"""The metrics registry: Counter / Gauge / Histogram / Timer instruments.

The paper leaves Legion unbenchmarked (section 6: "We are in the process
of benchmarking the current system"); this package supplies the missing
measurement substrate.  A :class:`MetricsRegistry` names a flat catalogue
of instruments; every hot path in the reproduction (Collection queries,
the Enactor's placement protocol, Host reservations, the transport, the
sim kernel) reports into the registry owned by its
:class:`~repro.metasystem.Metasystem`, and a deterministic
:meth:`~MetricsRegistry.snapshot` can be exported as JSON or
prometheus-style text (:mod:`repro.obs.export`).

Design points:

* **labeled children** — an instrument declared with ``labelnames``
  fans out into one *series* per label-value combination
  (``counter.labels(rtype="reusable timesharing").inc()``), mirroring
  prometheus client libraries;
* **virtual-clock timers** — :meth:`MetricsRegistry.time` measures spans
  of *simulated* time, so latency histograms report what the experiments
  measure, not wall-clock noise;
* **determinism** — snapshots iterate names and label keys in sorted
  order and contain no wall-clock input, so two identical seeded runs
  produce byte-identical exports (pinned by ``tests/test_determinism.py``);
* **quantiles** — :class:`Histogram` keeps cumulative bucket counts plus
  a :class:`~repro.sim.stats.RunningStats` accumulator, giving exact
  count/sum/min/max/mean and interpolated percentiles without storing
  samples;
* **exemplars** — a histogram remembers, per bucket, the trace ID of the
  max-latency observation that landed there (when an
  ``exemplar_provider`` is wired — the Metasystem connects it to the
  span tracer), so an outlier percentile links straight to the causal
  timeline that produced it.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.stats import RunningStats

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: default bucket upper bounds for virtual-time latencies (seconds)
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0)

#: default bucket upper bounds for set sizes / counts
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0)


class _Instrument:
    """Base: a named metric that may fan out into labeled child series."""

    kind = "abstract"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], "_Instrument"] = {}

    # -- labeled children ---------------------------------------------------
    def _make_child(self) -> "_Instrument":
        raise NotImplementedError

    def labels(self, **labels: Any) -> "_Instrument":
        """The child series for one label-value combination."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{sorted(self.labelnames)}, got {sorted(labels)}")
        key = tuple(str(labels[k]) for k in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _series(self) -> List[Tuple[Dict[str, str], "_Instrument"]]:
        """(labels, leaf) pairs in deterministic (sorted key) order."""
        if not self.labelnames:
            return [({}, self)]
        return [(dict(zip(self.labelnames, key)), self._children[key])
                for key in sorted(self._children)]

    def reset(self) -> None:
        self._children.clear()
        self._reset_leaf()

    def _reset_leaf(self) -> None:
        raise NotImplementedError

    def merge(self, other: "_Instrument") -> None:
        """Fold another instrument of the same kind/shape into this one."""
        if type(other) is not type(self):
            raise TypeError(f"cannot merge {type(other).__name__} "
                            f"into {type(self).__name__}")
        if other.labelnames != self.labelnames:
            raise ValueError(
                f"metric {self.name!r}: label mismatch "
                f"{other.labelnames} vs {self.labelnames}")
        self._merge_leaf(other)
        for key, child in other._children.items():
            mine = self._children.get(key)
            if mine is None:
                mine = self._make_child()
                self._children[key] = mine
            mine.merge(child)

    def _merge_leaf(self, other: "_Instrument") -> None:
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += n

    @property
    def value(self) -> float:
        return self._value

    def _reset_leaf(self) -> None:
        self._value = 0.0

    def _merge_leaf(self, other: "_Instrument") -> None:
        self._value += other._value  # type: ignore[attr-defined]


class Gauge(_Instrument):
    """An instantaneous value; optionally computed by a callback at
    snapshot time (for cheap kernel introspection like queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self._value += n

    def dec(self, n: float = 1.0) -> None:
        self._value -= n

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn()`` lazily whenever the gauge is read."""
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def _reset_leaf(self) -> None:
        self._value = 0.0

    def _merge_leaf(self, other: "_Instrument") -> None:
        # merging gauges keeps the other's current reading (last-writer)
        self._value = other.value  # type: ignore[attr-defined]
        self._fn = None


class Histogram(_Instrument):
    """Cumulative-bucket histogram with exact moments and quantiles.

    ``buckets`` are finite upper bounds; an implicit +Inf bucket catches
    the overflow.  Exact count/sum/min/max/mean come from a
    :class:`RunningStats`; :meth:`quantile` interpolates linearly within
    the containing bucket (clamped to the observed min/max).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)   # last slot = +Inf
        self.stats = RunningStats()
        #: bucket index -> (value, trace_id) of that bucket's max-latency
        #: observation seen so far (the exemplar window is cleared by
        #: ``reset``, i.e. per snapshot window when the caller resets)
        self.exemplars: Dict[int, Tuple[float, str]] = {}

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.bounds)

    def observe(self, x: float, exemplar: Optional[str] = None) -> None:
        x = float(x)
        idx = bisect.bisect_left(self.bounds, x)
        self._counts[idx] += 1
        self.stats.add(x)
        if exemplar is not None:
            current = self.exemplars.get(idx)
            if current is None or x >= current[0]:
                self.exemplars[idx] = (x, exemplar)

    @property
    def count(self) -> int:
        return self.stats.n

    @property
    def sum(self) -> float:
        return self.stats.mean * self.stats.n if self.stats.n else 0.0

    def cumulative_counts(self) -> List[int]:
        """Per-bucket cumulative counts, +Inf bucket last."""
        out, running = [], 0
        for c in self._counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Interpolated q-quantile (q in [0, 1]); NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.stats.n == 0:
            return float("nan")
        rank = q * self.stats.n
        cumulative = self.cumulative_counts()
        for i, cum in enumerate(cumulative):
            if rank <= cum:
                lo = self.bounds[i - 1] if i > 0 else self.stats.minimum
                hi = (self.bounds[i] if i < len(self.bounds)
                      else self.stats.maximum)
                prev = cumulative[i - 1] if i > 0 else 0
                width = cum - prev
                frac = (rank - prev) / width if width else 1.0
                value = lo + (hi - lo) * frac
                return min(max(value, self.stats.minimum),
                           self.stats.maximum)
        return self.stats.maximum

    def _reset_leaf(self) -> None:
        self._counts = [0] * (len(self.bounds) + 1)
        self.stats = RunningStats()
        self.exemplars = {}

    def _merge_leaf(self, other: "_Instrument") -> None:
        assert isinstance(other, Histogram)
        if other.bounds != self.bounds:
            raise ValueError(
                f"metric {self.name!r}: bucket bounds differ")
        self._counts = [a + b for a, b in zip(self._counts, other._counts)]
        self.stats = self.stats.merge(other.stats)
        for idx, (value, trace_id) in other.exemplars.items():
            mine = self.exemplars.get(idx)
            if mine is None or value >= mine[0]:
                self.exemplars[idx] = (value, trace_id)


class Timer:
    """Context manager recording a clock span into a histogram series.

    ``exemplar_fn`` (usually the span tracer's current-trace-ID hook)
    is evaluated at exit so the observation carries the trace it
    belongs to.
    """

    def __init__(self, histogram: Histogram, clock: Callable[[], float],
                 exemplar_fn: Optional[Callable[[], Optional[str]]] = None):
        self.histogram = histogram
        self._clock = clock
        self._exemplar_fn = exemplar_fn
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        exemplar = self._exemplar_fn() if self._exemplar_fn else None
        self.histogram.observe(self._clock() - self._t0,
                               exemplar=exemplar)


class _NullTimer:
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named catalogue of instruments bound to one (virtual) clock.

    Factory methods are idempotent: asking for an existing name returns
    the registered instrument (label names must agree; a kind clash
    raises).  The convenience one-liners (:meth:`count`, :meth:`observe`,
    :meth:`set_gauge`, :meth:`time`) infer label names from the keyword
    arguments, which keeps call sites to a single statement.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or (lambda: 0.0)
        self._metrics: Dict[str, _Instrument] = {}
        self._exemplar_provider: Optional[
            Callable[[], Optional[str]]] = None

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def set_exemplar_provider(
            self, fn: Optional[Callable[[], Optional[str]]]) -> None:
        """Wire a current-trace-ID hook: every histogram observation made
        while it returns a trace ID records that ID as the bucket's
        exemplar (if it is the bucket's max so far)."""
        self._exemplar_provider = fn

    def _current_exemplar(self) -> Optional[str]:
        if self._exemplar_provider is None:
            return None
        return self._exemplar_provider()

    @property
    def clock(self) -> Callable[[], float]:
        return self._clock

    # -- factories ----------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> _Instrument:
        instrument = self._metrics.get(name)
        if instrument is not None:
            if not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} is a {instrument.kind}, "
                    f"not a {cls.kind}")
            if tuple(labelnames) != instrument.labelnames:
                raise ValueError(
                    f"metric {name!r} declared with labels "
                    f"{instrument.labelnames}, got {tuple(labelnames)}")
            return instrument
        instrument = cls(name, help, labelnames=labelnames, **kwargs)
        self._metrics[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    # -- one-line instrumentation helpers -----------------------------------
    @staticmethod
    def _leaf(instrument: _Instrument, labels: Dict[str, Any]):
        return instrument.labels(**labels) if labels else instrument

    def count(self, name: str, n: float = 1.0, help: str = "",
              **labels: Any) -> None:
        counter = self.counter(name, help, labelnames=sorted(labels))
        self._leaf(counter, labels).inc(n)

    def observe(self, name: str, value: float, help: str = "",
                buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
                **labels: Any) -> None:
        histogram = self.histogram(name, help, labelnames=sorted(labels),
                                   buckets=buckets)
        self._leaf(histogram, labels).observe(
            value, exemplar=self._current_exemplar())

    def set_gauge(self, name: str, value: float, help: str = "",
                  **labels: Any) -> None:
        gauge = self.gauge(name, help, labelnames=sorted(labels))
        self._leaf(gauge, labels).set(value)

    def gauge_fn(self, name: str, fn: Callable[[], float],
                 help: str = "") -> Gauge:
        gauge = self.gauge(name, help)
        gauge.set_function(fn)
        return gauge

    def time(self, name: str, help: str = "",
             buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
             **labels: Any) -> Timer:
        histogram = self.histogram(name, help, labelnames=sorted(labels),
                                   buckets=buckets)
        return Timer(self._leaf(histogram, labels), self._clock,
                     exemplar_fn=self._exemplar_provider)

    # -- introspection ------------------------------------------------------
    def get(self, name: str) -> Optional[_Instrument]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def reset(self) -> None:
        for instrument in self._metrics.values():
            instrument.reset()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one (shard roll-up)."""
        for name in other.names():
            theirs = other._metrics[name]
            mine = self._metrics.get(name)
            if mine is None:
                kwargs = {}
                if isinstance(theirs, Histogram):
                    kwargs["buckets"] = theirs.bounds
                mine = self._get_or_create(
                    type(theirs), name, theirs.help, theirs.labelnames,
                    **kwargs)
            mine.merge(theirs)

    # -- export -------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Deterministic, JSON-safe view of every series (no NaN/Inf)."""
        from .export import build_snapshot
        return build_snapshot(self)

    def to_json(self, indent: Optional[int] = None) -> str:
        from .export import snapshot_to_json
        return snapshot_to_json(self.snapshot(), indent=indent)

    def to_prometheus(self) -> str:
        from .export import snapshot_to_prometheus
        return snapshot_to_prometheus(self.snapshot())

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MetricsRegistry metrics={len(self._metrics)}>"


class _NullCounter(Counter):
    def labels(self, **labels: Any) -> "_NullCounter":
        return self

    def inc(self, n: float = 1.0) -> None:
        return


class _NullGauge(Gauge):
    def labels(self, **labels: Any) -> "_NullGauge":
        return self

    def set(self, value: float) -> None:
        return

    def inc(self, n: float = 1.0) -> None:
        return

    def dec(self, n: float = 1.0) -> None:
        return


class _NullHistogram(Histogram):
    def labels(self, **labels: Any) -> "_NullHistogram":
        return self

    def observe(self, x: float, exemplar: Optional[str] = None) -> None:
        return


class NullMetricsRegistry(MetricsRegistry):
    """Records nothing — the hot-benchmark analogue of ``NullTracer``."""

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")
        self._null_timer = _NullTimer()

    def counter(self, name, help="", labelnames=()):
        return self._null_counter

    def gauge(self, name, help="", labelnames=()):
        return self._null_gauge

    def histogram(self, name, help="", labelnames=(),
                  buckets=DEFAULT_TIME_BUCKETS):
        return self._null_histogram

    def count(self, name, n=1.0, help="", **labels):
        return

    def observe(self, name, value, help="", buckets=DEFAULT_TIME_BUCKETS,
                **labels):
        return

    def set_gauge(self, name, value, help="", **labels):
        return

    def gauge_fn(self, name, fn, help=""):
        return self._null_gauge

    def time(self, name, help="", buckets=DEFAULT_TIME_BUCKETS, **labels):
        return self._null_timer


#: shared do-nothing registry for benchmark loops
NULL_METRICS = NullMetricsRegistry()
