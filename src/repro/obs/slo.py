"""Declarative service-level objectives over windowed metric history.

An :class:`SLOSpec` names an objective against the time series a
:class:`~repro.obs.timeseries.MetricsSampler` captured:

* ``kind="latency"`` — a latency target: the fraction of observations
  of a histogram metric that must land at or under ``threshold``
  (virtual seconds) is at least ``target``.  Good/bad event counts are
  estimated per window from the windowed bucket deltas, interpolating
  inside the bucket containing the threshold (prometheus
  ``histogram_quantile`` semantics in reverse);
* ``kind="ratio"`` — a success-ratio target: ``good`` counter events
  over ``total`` counter events (or over ``good`` + ``bad`` when a
  ``bad`` counter is named instead) must be at least ``target``.

Evaluation (:func:`evaluate_slo`) walks the retained windows and
produces, per window, good/bad/total event estimates and a **burn
rate** — the rate at which the error budget is being consumed, where
1.0 means "exactly the steady-state allowance" (bad fraction equals
``1 - target``).  Cumulative accounting yields the **error budget**:
``allowed_bad = (1 - target) * total_events``; the budget is exhausted
when cumulative bad events meet or exceed it.

Burn-rate alerts follow the standard fast/slow multiwindow pattern:

* **fast** — a single window burning at ≥ ``fast_burn`` (default 14.4,
  the classic "2% of a 30-day budget in an hour" multiplier) fires a
  page-severity alert at that window's end time;
* **slow** — the aggregated burn over the last ``slow_windows`` windows
  at ≥ ``slow_burn`` (default 6.0) fires a ticket-severity alert.

Everything is derived from virtual-clock windows, so alert firing times
and budget numbers are deterministic for a seeded run (pinned by
``tests/test_slo.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .timeseries import Window

__all__ = [
    "SLOSpec",
    "WindowVerdict",
    "BurnAlert",
    "SLOResult",
    "evaluate_slo",
    "evaluate_slos",
    "specs_from_dict",
    "specs_to_dict",
    "default_legion_slos",
]

#: default fast-burn multiplier (one window at this rate pages)
DEFAULT_FAST_BURN = 14.4
#: default slow-burn multiplier over the slow lookback
DEFAULT_SLOW_BURN = 6.0
#: default slow-burn lookback, in windows
DEFAULT_SLOW_WINDOWS = 6


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective (see module docstring for semantics)."""

    name: str
    kind: str                       # "latency" | "ratio"
    target: float                   # fraction of good events, e.g. 0.99
    description: str = ""
    # latency objectives
    metric: str = ""                # histogram metric name
    labels: Mapping[str, str] = field(default_factory=dict)
    threshold: float = 0.0          # good when observation <= threshold (s)
    # ratio objectives
    good: str = ""                  # counter of good events
    good_labels: Mapping[str, str] = field(default_factory=dict)
    total: str = ""                 # counter of all events, or:
    total_labels: Mapping[str, str] = field(default_factory=dict)
    bad: str = ""                   # counter of bad events (total = g + b)
    bad_labels: Mapping[str, str] = field(default_factory=dict)
    # alerting knobs
    fast_burn: float = DEFAULT_FAST_BURN
    slow_burn: float = DEFAULT_SLOW_BURN
    slow_windows: int = DEFAULT_SLOW_WINDOWS

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "ratio"):
            raise ValueError(
                f"SLO {self.name!r}: kind must be 'latency' or 'ratio', "
                f"got {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"SLO {self.name!r}: target must be in (0, 1), "
                f"got {self.target}")
        if self.kind == "latency":
            if not self.metric:
                raise ValueError(
                    f"latency SLO {self.name!r} needs a metric")
            if self.threshold <= 0:
                raise ValueError(
                    f"latency SLO {self.name!r} needs a positive "
                    f"threshold")
        else:
            if not self.good:
                raise ValueError(
                    f"ratio SLO {self.name!r} needs a good counter")
            if not self.total and not self.bad:
                raise ValueError(
                    f"ratio SLO {self.name!r} needs a total or bad "
                    f"counter")

    @property
    def budget_fraction(self) -> float:
        """The error budget as a fraction of total events."""
        return 1.0 - self.target

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
        }
        if self.description:
            out["description"] = self.description
        if self.kind == "latency":
            out["metric"] = self.metric
            out["threshold"] = self.threshold
            if self.labels:
                out["labels"] = dict(sorted(self.labels.items()))
        else:
            out["good"] = self.good
            if self.good_labels:
                out["good_labels"] = dict(sorted(self.good_labels.items()))
            if self.total:
                out["total"] = self.total
                if self.total_labels:
                    out["total_labels"] = dict(
                        sorted(self.total_labels.items()))
            if self.bad:
                out["bad"] = self.bad
                if self.bad_labels:
                    out["bad_labels"] = dict(sorted(self.bad_labels.items()))
        if self.fast_burn != DEFAULT_FAST_BURN:
            out["fast_burn"] = self.fast_burn
        if self.slow_burn != DEFAULT_SLOW_BURN:
            out["slow_burn"] = self.slow_burn
        if self.slow_windows != DEFAULT_SLOW_WINDOWS:
            out["slow_windows"] = self.slow_windows
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SLOSpec":
        known = {
            "name", "kind", "target", "description", "metric", "labels",
            "threshold", "good", "good_labels", "total", "total_labels",
            "bad", "bad_labels", "fast_burn", "slow_burn", "slow_windows",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown SLO spec field(s): {unknown}")
        return cls(**{k: data[k] for k in data})


@dataclass
class WindowVerdict:
    """Per-window good/bad accounting for one objective."""

    index: int
    start: float
    end: float
    good: float
    bad: float
    total: float
    burn_rate: float
    breached: bool
    #: exemplar trace IDs fresh in this window (latency objectives only)
    exemplars: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "good": round(self.good, 6),
            "bad": round(self.bad, 6),
            "total": round(self.total, 6),
            "burn_rate": round(self.burn_rate, 6),
            "breached": self.breached,
            "exemplars": list(self.exemplars),
        }


@dataclass(frozen=True)
class BurnAlert:
    """One deterministic burn-rate alert firing."""

    slo: str
    severity: str       # "fast" (page) | "slow" (ticket)
    window_index: int
    fired_at: float     # the breaching window's end time
    burn_rate: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "severity": self.severity,
            "window_index": self.window_index,
            "fired_at": self.fired_at,
            "burn_rate": round(self.burn_rate, 6),
        }


@dataclass
class SLOResult:
    """Everything :func:`evaluate_slo` derived for one objective."""

    spec: SLOSpec
    verdicts: List[WindowVerdict] = field(default_factory=list)
    alerts: List[BurnAlert] = field(default_factory=list)
    good: float = 0.0
    bad: float = 0.0
    total: float = 0.0

    # -- budget -------------------------------------------------------------
    @property
    def allowed_bad(self) -> float:
        return self.spec.budget_fraction * self.total

    @property
    def budget_consumed(self) -> float:
        """Fraction of the error budget consumed (may exceed 1.0)."""
        allowed = self.allowed_bad
        if allowed <= 0:
            return 0.0 if self.bad <= 0 else float(len(self.verdicts) or 1)
        return self.bad / allowed

    @property
    def budget_remaining(self) -> float:
        return 1.0 - self.budget_consumed

    @property
    def exhausted(self) -> bool:
        return self.total > 0 and self.budget_consumed >= 1.0

    @property
    def compliance(self) -> float:
        """Achieved good fraction (1.0 when no events arrived)."""
        if self.total <= 0:
            return 1.0
        return self.good / self.total

    @property
    def minutes_lost(self) -> float:
        """SLO minutes lost: total duration of breached windows."""
        return sum((v.end - v.start) for v in self.verdicts
                   if v.breached) / 60.0

    @property
    def breached_windows(self) -> int:
        return sum(1 for v in self.verdicts if v.breached)

    def breached_exemplars(self) -> List[str]:
        """Deterministic union of exemplar trace IDs from breached
        windows — the traces to pull up when the budget went."""
        seen: Dict[str, None] = {}
        for v in self.verdicts:
            if v.breached:
                for trace_id in v.exemplars:
                    seen.setdefault(trace_id)
        return sorted(seen)

    def to_dict(self, include_windows: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "events": {
                "good": round(self.good, 6),
                "bad": round(self.bad, 6),
                "total": round(self.total, 6),
            },
            "compliance": round(self.compliance, 6),
            "budget": {
                "allowed_bad": round(self.allowed_bad, 6),
                "consumed": round(self.budget_consumed, 6),
                "remaining": round(self.budget_remaining, 6),
                "exhausted": self.exhausted,
            },
            "minutes_lost": round(self.minutes_lost, 6),
            "breached_windows": self.breached_windows,
            "alerts": [a.to_dict() for a in self.alerts],
            "breached_exemplars": self.breached_exemplars(),
        }
        if include_windows:
            out["windows"] = [v.to_dict() for v in self.verdicts]
        return out


# ---------------------------------------------------------------------------
# per-window event extraction
# ---------------------------------------------------------------------------
def _good_below_threshold(row: Mapping[str, Any],
                          threshold: float) -> float:
    """Estimated observations at or under ``threshold`` in one windowed
    histogram row (linear interpolation inside the containing bucket)."""
    good = 0.0
    lo = 0.0
    for bound_str, delta in row.get("buckets", ()):
        if not delta:
            if bound_str != "+Inf":
                lo = float(bound_str)
            continue
        if bound_str == "+Inf":
            # unbounded overflow bucket: nothing in it can be proven good
            break
        hi = float(bound_str)
        if hi <= threshold:
            good += delta
        elif lo < threshold:
            width = hi - lo
            frac = (threshold - lo) / width if width > 0 else 0.0
            good += delta * frac
            break
        else:
            break
        lo = hi
    return good


def _window_events(spec: SLOSpec, window: Window
                   ) -> tuple:
    """(good, total, exemplars) event estimates for one window."""
    if spec.kind == "latency":
        good = 0.0
        total = 0.0
        exemplars: List[str] = []
        for row in window.matching(spec.metric, dict(spec.labels)):
            if row.get("kind") != "histogram":
                continue
            total += float(row.get("count", 0))
            good += _good_below_threshold(row, spec.threshold)
            exemplars.extend(row.get("exemplars", ()))
        return good, total, sorted(set(exemplars))
    good = sum(float(row.get("delta", 0.0))
               for row in window.matching(spec.good,
                                          dict(spec.good_labels))
               if row.get("kind") == "counter")
    if spec.total:
        total = sum(float(row.get("delta", 0.0))
                    for row in window.matching(spec.total,
                                               dict(spec.total_labels))
                    if row.get("kind") == "counter")
        total = max(total, good)
    else:
        bad = sum(float(row.get("delta", 0.0))
                  for row in window.matching(spec.bad,
                                             dict(spec.bad_labels))
                  if row.get("kind") == "counter")
        total = good + bad
    return good, total, []


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------
def evaluate_slo(spec: SLOSpec, windows: Sequence[Window]) -> SLOResult:
    """Walk the windows and derive verdicts, budget, and alerts."""
    result = SLOResult(spec=spec)
    budget_fraction = spec.budget_fraction
    recent: List[WindowVerdict] = []
    for window in windows:
        good, total, exemplars = _window_events(spec, window)
        bad = max(0.0, total - good)
        if total > 0:
            burn = (bad / total) / budget_fraction
        else:
            burn = 0.0
        verdict = WindowVerdict(
            index=window.index, start=window.start, end=window.end,
            good=good, bad=bad, total=total, burn_rate=burn,
            breached=burn > 1.0, exemplars=list(exemplars))
        result.verdicts.append(verdict)
        result.good += good
        result.bad += bad
        result.total += total
        # fast burn: this window alone
        if total > 0 and burn >= spec.fast_burn:
            result.alerts.append(BurnAlert(
                slo=spec.name, severity="fast",
                window_index=window.index, fired_at=window.end,
                burn_rate=burn))
        # slow burn: aggregated over the trailing lookback
        recent.append(verdict)
        if len(recent) > spec.slow_windows:
            recent.pop(0)
        slow_total = sum(v.total for v in recent)
        slow_bad = sum(v.bad for v in recent)
        if slow_total > 0:
            slow_rate = (slow_bad / slow_total) / budget_fraction
            if slow_rate >= spec.slow_burn:
                result.alerts.append(BurnAlert(
                    slo=spec.name, severity="slow",
                    window_index=window.index, fired_at=window.end,
                    burn_rate=slow_rate))
    return result


def evaluate_slos(specs: Sequence[SLOSpec],
                  windows: Sequence[Window]) -> List[SLOResult]:
    """Evaluate every objective (in the given order) over one history."""
    return [evaluate_slo(spec, windows) for spec in specs]


# ---------------------------------------------------------------------------
# spec documents
# ---------------------------------------------------------------------------
def specs_from_dict(doc: Mapping[str, Any]) -> List[SLOSpec]:
    """Parse a spec document: ``{"slos": [{...}, ...]}`` (the ``--spec``
    file format of ``legion-sim slo``)."""
    raw = doc.get("slos")
    if not isinstance(raw, list) or not raw:
        raise ValueError("spec document needs a non-empty 'slos' list")
    return [SLOSpec.from_dict(entry) for entry in raw]


def specs_to_dict(specs: Sequence[SLOSpec]) -> Dict[str, Any]:
    return {"slos": [spec.to_dict() for spec in specs]}


def default_legion_slos() -> List[SLOSpec]:
    """The stock objectives for a Legion metasystem run.

    Fed by the placement instrumentation in
    :meth:`repro.scheduler.base.Scheduler.run` (``placement_seconds``,
    ``placement_requests_total``) and the Enactor's reservation
    counters — the signals the guardrails layer is designed to protect.
    """
    return [
        SLOSpec(
            name="placement-latency",
            kind="latency",
            target=0.95,
            metric="placement_seconds",
            threshold=1.0,
            description="95% of placement requests finish within 1 "
                        "virtual second"),
        SLOSpec(
            name="placement-success",
            kind="ratio",
            target=0.9,
            good="placement_requests_total",
            good_labels={"ok": "true"},
            total="placement_requests_total",
            description="90% of placement requests succeed"),
        SLOSpec(
            name="reservation-success",
            kind="ratio",
            target=0.85,
            good="enactor_reservations_granted_total",
            total="enactor_reservation_requests_total",
            description="85% of reservation RPCs are granted"),
    ]
