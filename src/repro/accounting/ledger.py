"""Accounting: metered charging for consumed cycles.

Paper section 3.1 lists, among the rich information a Host can export,
"the amount charged per CPU cycle consumed"; section 1 frames users as
optimizing "throughput, turnaround time, **or cost**".  The ledger closes
that loop: hosts meter the cycles each placed object actually consumed
(completion, kill, or deactivation) and post charges at their advertised
price; Schedulers can then optimize against *real* costs, and experiments
can audit them (E20).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..hosts.host_object import HostObject
from ..naming.loid import LOID
from ..objects.base import LegionObject

__all__ = ["ChargeRecord", "Ledger"]


@dataclass(frozen=True)
class ChargeRecord:
    """One posted charge."""

    time: float
    host_loid: LOID
    instance_loid: LOID
    class_loid: LOID
    cycles: float
    price_per_cycle: float

    @property
    def amount(self) -> float:
        return self.cycles * self.price_per_cycle


class Ledger:
    """Collects charges from attached hosts."""

    def __init__(self, clock=None):
        self._clock = clock or (lambda: 0.0)
        self.records: List[ChargeRecord] = []
        self._attached: List[HostObject] = []
        #: optional post hook, called with each ChargeRecord as it lands —
        #: the economy's BudgetManager installs itself here to turn
        #: metered cycles into per-user spend
        self.on_post = None

    # -- attachment -----------------------------------------------------------
    def attach(self, host: HostObject) -> None:
        """Install this ledger as the host's billing hook."""
        def bill(instance: LegionObject, cycles: float,
                 h: HostObject = host) -> None:
            self.post(h, instance, cycles)
        host.billing = bill
        self._attached.append(host)

    def attach_all(self, hosts) -> None:
        for host in hosts:
            self.attach(host)

    # -- posting --------------------------------------------------------------
    def post(self, host: HostObject, instance: LegionObject,
             cycles: float) -> ChargeRecord:
        # the rate quoted when the instance was admitted wins over the
        # host's *current* price: with a live market the ask may have
        # moved while the job ran, but the fare was agreed at the start
        price = instance.attributes.get("price_at_start")
        if price is None:
            price = host.price
        record = ChargeRecord(
            time=self._clock(),
            host_loid=host.loid,
            instance_loid=instance.loid,
            class_loid=instance.class_loid,
            cycles=float(cycles),
            price_per_cycle=float(price))
        self.records.append(record)
        if self.on_post is not None:
            self.on_post(record)
        return record

    # -- reporting --------------------------------------------------------------
    @property
    def total(self) -> float:
        return sum(r.amount for r in self.records)

    def total_for_class(self, class_loid: LOID) -> float:
        return sum(r.amount for r in self.records
                   if r.class_loid == class_loid)

    def total_for_instance(self, instance_loid: LOID) -> float:
        return sum(r.amount for r in self.records
                   if r.instance_loid == instance_loid)

    def revenue_by_host(self) -> Dict[LOID, float]:
        out: Dict[LOID, float] = {}
        for r in self.records:
            out[r.host_loid] = out.get(r.host_loid, 0.0) + r.amount
        return out

    def cycles_by_host(self) -> Dict[LOID, float]:
        out: Dict[LOID, float] = {}
        for r in self.records:
            out[r.host_loid] = out.get(r.host_loid, 0.0) + r.cycles
        return out

    def __len__(self) -> int:
        return len(self.records)
