"""Cost-aware scheduling: cheapest placement subject to a deadline.

"Users want to optimize factors such as application throughput,
turnaround time, or cost" (paper section 1).  This Scheduler optimizes
cost under a turnaround constraint: among viable hosts whose *estimated*
completion time for the class's advertised work meets the deadline, pick
the cheapest (price per cycle, from the Collection); spill to faster,
pricier hosts only when the deadline demands it.  Variants carry the
next-cheapest feasible alternatives.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..collection.records import CollectionRecord
from ..errors import SchedulingError
from ..naming.loid import LOID
from ..schedule.mapping import ScheduleMapping
from ..schedule.schedule import (
    MasterSchedule,
    ScheduleRequestList,
    VariantSchedule,
)
from ..scheduler.base import ObjectClassRequest, Scheduler

__all__ = ["CostAwareScheduler"]


class CostAwareScheduler(Scheduler):
    """Cheapest-feasible placement under a per-instance deadline."""

    def __init__(self, *args, deadline: float = float("inf"),
                 n_variants: int = 2, work_attr: str = "work_units",
                 default_work: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self.deadline = deadline
        self.n_variants = n_variants
        self.work_attr = work_attr
        self.default_work = default_work

    # -- estimates ----------------------------------------------------------
    def _rate_of(self, record: CollectionRecord) -> float:
        speed = float(record.get("host_speed", 1.0))
        load = float(record.get("host_load", 0.0))
        return speed / (1.0 + max(0.0, load))

    def _price_of(self, record: CollectionRecord) -> float:
        return float(record.get("host_price", 0.0))

    def _work_of(self, request: ObjectClassRequest) -> float:
        value = request.class_obj.attributes.get(self.work_attr)
        return float(value) if value is not None else self.default_work

    def estimated_completion(self, record: CollectionRecord,
                             work: float, queued: int = 0) -> float:
        """Completion estimate if placed now behind ``queued`` of our own
        earlier assignments on the same host."""
        return (queued + 1) * work / max(self._rate_of(record), 1e-9)

    def estimated_cost(self, record: CollectionRecord,
                       work: float) -> float:
        return self._price_of(record) * work

    # -- placement ------------------------------------------------------------
    def compute_schedule(self, requests: Sequence[ObjectClassRequest]
                         ) -> ScheduleRequestList:
        entries: List[ScheduleMapping] = []
        alternates: List[List[ScheduleMapping]] = []
        assigned: Dict[LOID, int] = {}
        for request in requests:
            class_obj = request.class_obj
            records = self.viable_hosts(class_obj,
                                        extra_query="$host_slots_free > 0")
            # belt-and-braces: viable_hosts already drops DOWN records,
            # but results that arrive through an overridden/stale lookup
            # path (e.g. a federation query cache) must never let a dead
            # host win the cheapest-feasible ranking
            records = [r for r in records
                       if r.get("host_health") != "down"]
            if not records:
                raise SchedulingError(
                    f"no viable hosts for class {class_obj.name!r}")
            work = self._work_of(request)
            for _i in range(request.count):
                feasible = [
                    r for r in records
                    if self.estimated_completion(
                        r, work, assigned.get(r.member, 0))
                    <= self.deadline]
                if feasible:
                    # cheapest feasible; ties -> least already assigned
                    # (spread), then faster, then LOID
                    ranked = sorted(
                        feasible,
                        key=lambda r: (self.estimated_cost(r, work),
                                       assigned.get(r.member, 0),
                                       -self._rate_of(r), r.member))
                else:
                    # deadline unreachable: degrade to fastest available
                    ranked = sorted(
                        records,
                        key=lambda r: (self.estimated_completion(
                            r, work, assigned.get(r.member, 0)),
                            self.estimated_cost(r, work), r.member))
                best = ranked[0]
                assigned[best.member] = assigned.get(best.member, 0) + 1
                vaults = self.compatible_vaults_of(best)
                if not vaults:
                    raise SchedulingError(
                        f"host {best.member} advertises no compatible "
                        f"vaults")
                entries.append(ScheduleMapping(class_obj.loid, best.member,
                                               vaults[0]))
                alts = []
                for record in ranked[1: 1 + self.n_variants]:
                    v = self.compatible_vaults_of(record)
                    if v:
                        alts.append(ScheduleMapping(
                            class_obj.loid, record.member, v[0]))
                alternates.append(alts)

        master = MasterSchedule(entries, label="cost-aware")
        for v in range(self.n_variants):
            replacements = {
                j: alts[v] for j, alts in enumerate(alternates)
                if v < len(alts) and not alts[v].same_target(entries[j])}
            if replacements:
                master.add_variant(VariantSchedule(
                    replacements, label=f"cost-alt-{v + 1}"))
        return ScheduleRequestList([master], label="cost-aware")
