"""Accounting: cycle metering, ledgers, and cost-aware scheduling."""

from .cost_sched import CostAwareScheduler
from .ledger import ChargeRecord, Ledger

__all__ = ["Ledger", "ChargeRecord", "CostAwareScheduler"]
