"""The Enactor subsystem: reservation negotiation, variant fallback,
co-allocation, and object instantiation."""

from .coallocation import CoAllocator, ReservationOutcome
from .enactor import Enactor, EnactorStats, EnactResult

__all__ = ["Enactor", "EnactResult", "EnactorStats",
           "CoAllocator", "ReservationOutcome"]
