"""The Enactor: schedule implementation (paper section 3.4).

Interface (Fig. 6)::

    LegionScheduleFeedback  make_reservations(LegionScheduleList)
    int                     cancel_reservations(LegionScheduleRequestList)
    LegionScheduleRequestList enact_schedule(LegionScheduleRequestList)

Behaviour reproduced:

* master schedules are tried in order; "if all mappings in the master
  schedule succeed, then scheduling is complete.  If not, then a variant
  schedule is selected that contains a new entry for the failed mapping";
* variant selection uses the per-variant **bitmap** so the Enactor can
  "efficiently select the next variant schedule to try";
* "Our default Schedulers and Enactor work together to structure the
  variant schedules so as to avoid **reservation thrashing** (the canceling
  and subsequent remaking of the same reservation)" — when switching to a
  variant, reservations already held are kept unless the variant names a
  different target for that entry.  The ``naive_variant_handling`` flag
  disables this (cancel everything, re-reserve the whole variant) for the
  E7 ablation, and :attr:`EnactorStats.thrash_count` counts remakes of a
  previously cancelled identical reservation;
* co-allocation across domains runs through
  :class:`~repro.enactor.coallocation.CoAllocator` (parallel negotiation);
* "k out of n" masters (``required_k``) succeed once k reservations hold,
  cancelling the surplus;
* after reservations succeed, the Scheduler confirms (simply by calling
  :meth:`enact_schedule`) and the Enactor instantiates objects through
  ``create_instance`` on the Class objects with directed placement, returning
  per-entry success/failure codes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import EnactmentError, MalformedScheduleError, NetworkError
from ..hosts.reservations import (
    INSTANTANEOUS,
    ReservationToken,
    ReservationType,
    REUSABLE_TIME,
)
from ..naming.loid import LOID
from ..net.topology import NetLocation
from ..net.transport import Call, Transport
from ..obs.registry import MetricsRegistry
from ..obs.spans import SpanTracer
from ..objects.class_object import ClassObject, CreateResult, Placement
from ..schedule.mapping import ScheduleMapping
from ..schedule.schedule import (
    FailureKind,
    MasterSchedule,
    ScheduleFeedback,
    ScheduleRequestList,
    VariantSchedule,
)
from ..sim.tracing import Tracer
from .coallocation import CoAllocator, ReservationOutcome

__all__ = ["Enactor", "EnactResult", "EnactorStats"]

Resolver = Callable[[LOID], Any]


@dataclass
class EnactorStats:
    """Counters for the E7/E8 experiments."""

    reservation_requests: int = 0
    reservations_granted: int = 0
    cancellations: int = 0
    #: cancel-then-remake of an identical (host, vault, class) reservation
    thrash_count: int = 0
    variant_attempts: int = 0
    master_attempts: int = 0
    enactments: int = 0
    enact_failures: int = 0
    #: re-issued reservation requests driven by the opt-in retry policy
    reservation_retries: int = 0
    #: reservation requests issued to hosts whose machine was down at
    #: issue time — the "wasted rounds" the guardrails layer shaves off
    #: (counted in every mode, guardrails or not, for the benchmark)
    wasted_reservation_attempts: int = 0
    #: entries skipped before issue because the health monitor classified
    #: the host SUSPECT/DOWN (guardrails load shedding)
    load_shed: int = 0
    #: instances created by an RPC whose success ack was lost, found and
    #: destroyed via their reservation token during rollback
    unacked_reaps: int = 0


@dataclass
class _Holding:
    mapping: ScheduleMapping
    token: ReservationToken


class _ReservationSet:
    """Opaque handle carried in ScheduleFeedback.reservation_handle."""

    _ids = itertools.count(1)

    def __init__(self, master_index: int,
                 entries: List[Tuple[int, ScheduleMapping]],
                 holdings: Dict[int, _Holding]):
        self.handle_id = next(self._ids)
        self.master_index = master_index
        self.entries = entries          # [(master entry index, mapping)]
        self.holdings = holdings        # index -> holding
        self.enacted = False


@dataclass
class EnactResult:
    """Outcome of enact_schedule: per-entry instance creation reports."""

    ok: bool
    created: List[LOID] = field(default_factory=list)
    entry_results: Dict[int, CreateResult] = field(default_factory=dict)
    detail: str = ""
    #: (class_obj, token) pairs whose create RPC died in transit — the
    #: create may have executed without its ack arriving, so rollback
    #: reaps by reservation token instead of by (unknown) LOID
    suspect: List[Tuple[Any, Any]] = field(default_factory=list)


class Enactor:
    """Negotiates reservations for schedules and instantiates objects."""

    def __init__(self, transport: Transport, resolver: Resolver,
                 location: Optional[NetLocation] = None,
                 tracer: Optional[Tracer] = None,
                 requester_domain: str = "",
                 offered_price: float = 0.0,
                 naive_variant_handling: bool = False,
                 sequential_coallocation: bool = False,
                 max_variant_attempts: int = 32,
                 metrics: Optional[MetricsRegistry] = None,
                 spans: Optional[SpanTracer] = None):
        self.transport = transport
        self.resolver = resolver
        self.location = location
        self.tracer = tracer if tracer is not None else transport.tracer
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry(lambda: transport.sim.now))
        self.spans = spans if spans is not None else transport.spans
        self.coallocator = CoAllocator(
            transport, resolver, src=location,
            requester_domain=requester_domain,
            offered_price=offered_price,
            sequential=sequential_coallocation)
        self.naive_variant_handling = naive_variant_handling
        self.max_variant_attempts = max_variant_attempts
        #: opt-in retry layer for transient reservation failures
        #: (duck-typed; see repro.chaos.retry.RetryPolicy)
        self.retry_policy = None
        #: opt-in health source for load shedding (duck-typed; see
        #: repro.guardrails.health.HealthMonitor)
        self.health = None
        #: shed SUSPECT hosts too (only when fallback schedules remain);
        #: DOWN hosts are always shed while a health source is installed
        self.shed_suspect = True
        self.stats = EnactorStats()
        self._cancelled_targets: set = set()

    # ------------------------------------------------------------------
    # make_reservations
    # ------------------------------------------------------------------
    def make_reservations(self, request: ScheduleRequestList,
                          rtype: ReservationType = REUSABLE_TIME,
                          duration: float = 3600.0,
                          start_time: float = INSTANTANEOUS,
                          timeout: float = 120.0) -> ScheduleFeedback:
        """Try each master schedule (with its variants) until one holds."""
        if not isinstance(request, ScheduleRequestList):
            raise MalformedScheduleError(
                f"make_reservations needs a ScheduleRequestList, got "
                f"{type(request).__name__}")
        self._cancelled_targets = set()
        last_errors: Dict[int, str] = {}
        last_detail = ""
        with self.spans.span_if_active("enactor.negotiate", step="4-6",
                                       masters=len(request.masters)
                                       ) as neg_span:
            with self.metrics.time("enactor_step_seconds", step="negotiate"):
                for m_idx, master in enumerate(request.masters):
                    self.stats.master_attempts += 1
                    self.metrics.count("enactor_master_attempts_total")
                    with self.spans.span_if_active(
                            "enactor.master", step="4",
                            master=m_idx) as m_span:
                        feedback = self._try_master(request, m_idx, master,
                                                    rtype, duration,
                                                    start_time, timeout)
                        m_span.set_attribute("ok", feedback.ok)
                        if not feedback.ok:
                            m_span.set_status("error")
                    if feedback.ok:
                        neg_span.set_attribute("master", m_idx)
                        self.tracer.emit(
                            "enactor", "reserved", master=m_idx,
                            variant=(feedback.variant.label
                                     if feedback.variant else None))
                        return feedback
                    last_errors = feedback.entry_errors or last_errors
                    last_detail = feedback.failure_detail or last_detail
            neg_span.set_status("error")
        detail = "all master and variant schedules failed"
        if last_detail:
            detail += f" (last: {last_detail})"
        return ScheduleFeedback(
            request=request, ok=False,
            failure_kind=FailureKind.RESOURCES,
            failure_detail=detail,
            entry_errors=last_errors)

    def _shed(self, indexed: List[Tuple[int, ScheduleMapping]],
              have_fallback: bool
              ) -> Tuple[List[Tuple[int, ScheduleMapping]],
                         List[ReservationOutcome]]:
        """Drop entries whose host the HealthMonitor has quarantined.

        DOWN hosts are always skipped; SUSPECT hosts only when fallback
        schedules remain (``have_fallback``), so a last-ditch attempt
        still gets to try a merely-suspect host."""
        if self.health is None:
            return list(indexed), []
        kept: List[Tuple[int, ScheduleMapping]] = []
        shed: List[ReservationOutcome] = []
        for idx, mapping in indexed:
            state = self.health.state_of(mapping.host_loid)
            if state == "down" or (state == "suspect" and have_fallback
                                   and self.shed_suspect):
                shed.append(ReservationOutcome(
                    index=idx, mapping=mapping,
                    error=f"shed: host {state}"))
                self.stats.load_shed += 1
                self.metrics.count("guardrail_load_shed_total", state=state)
            else:
                kept.append((idx, mapping))
        return kept, shed

    def _count_wasted(self,
                      indexed: List[Tuple[int, ScheduleMapping]]) -> None:
        """Benchmark ground truth: requests issued to machines that are
        down *right now* are wasted rounds (counted in every mode)."""
        for _idx, mapping in indexed:
            host = self.resolver(mapping.host_loid)
            if host is not None and not host.machine.up:
                self.stats.wasted_reservation_attempts += 1
                self.metrics.count("guardrail_wasted_reservations_total")

    def _reserve(self, indexed: List[Tuple[int, ScheduleMapping]],
                 rtype: ReservationType, duration: float,
                 start_time: float, timeout: float,
                 have_fallback: bool = False
                 ) -> List[ReservationOutcome]:
        indexed, shed = self._shed(indexed, have_fallback)
        self._count_wasted(indexed)
        with self.spans.span_if_active("enactor.reserve", step="5",
                                       entries=len(indexed)):
            with self.metrics.time("enactor_step_seconds", step="reserve"):
                outcomes = self.coallocator.reserve_batch(
                    indexed, rtype=rtype, duration=duration,
                    start_time=start_time, timeout=timeout)
                outcomes = self._retry_failed(outcomes, rtype, duration,
                                              start_time, timeout)
        outcomes.extend(shed)
        self.stats.reservation_requests += len(indexed)
        self.metrics.count("enactor_reservation_requests_total",
                           len(indexed))
        for o in outcomes:
            if o.ok:
                self.stats.reservations_granted += 1
                self.metrics.count("enactor_reservations_granted_total")
                key = (o.mapping.host_loid, o.mapping.vault_loid,
                       o.mapping.class_loid)
                if key in self._cancelled_targets:
                    self.stats.thrash_count += 1
                    self.metrics.count("enactor_thrash_total")
        return outcomes

    def _retry_failed(self, outcomes: List[ReservationOutcome],
                      rtype: ReservationType, duration: float,
                      start_time: float, timeout: float
                      ) -> List[ReservationOutcome]:
        """Re-issue reservations that failed transiently (lost messages),
        under the installed :attr:`retry_policy`.  Without a policy (the
        default) this is a no-op."""
        policy = self.retry_policy
        if policy is None:
            return outcomes
        first_try = self.transport.sim.now
        attempt = 0
        while True:
            failed = [(pos, o) for pos, o in enumerate(outcomes)
                      if not o.ok and o.exception is not None
                      and policy.is_retryable(o.exception)]
            if not failed:
                return outcomes
            attempt += 1
            delay = policy.next_delay(failed[0][1].exception, attempt,
                                      self.transport.sim.now - first_try)
            if delay is None:
                return outcomes
            self.stats.reservation_retries += len(failed)
            self.metrics.count("enactor_reservation_retries_total",
                               len(failed))
            self.transport.sim.run_until(self.transport.sim.now + delay)
            self._count_wasted([(o.index, o.mapping) for _, o in failed])
            redo = self.coallocator.reserve_batch(
                [(o.index, o.mapping) for _, o in failed],
                rtype=rtype, duration=duration,
                start_time=start_time, timeout=timeout)
            for (pos, _), new_outcome in zip(failed, redo):
                outcomes[pos] = new_outcome

    def _cancel_holdings(self, holdings: Dict[int, _Holding]) -> None:
        if not holdings:
            return
        pairs = [(h.mapping, h.token) for h in holdings.values()]
        for mapping, _tok in pairs:
            self._cancelled_targets.add(
                (mapping.host_loid, mapping.vault_loid, mapping.class_loid))
        with self.spans.span_if_active("enactor.cancel",
                                       entries=len(pairs)):
            with self.metrics.time("enactor_step_seconds", step="cancel"):
                cancelled = self.coallocator.cancel_batch(pairs)
        self.stats.cancellations += cancelled
        self.metrics.count("enactor_cancellations_total", cancelled)

    def _try_master(self, request: ScheduleRequestList, m_idx: int,
                    master: MasterSchedule, rtype: ReservationType,
                    duration: float, start_time: float,
                    timeout: float) -> ScheduleFeedback:
        entries = master.resolve()
        indexed = list(enumerate(entries))
        holdings: Dict[int, _Holding] = {}
        errors: Dict[int, str] = {}

        outcomes = self._reserve(
            indexed, rtype, duration, start_time, timeout,
            have_fallback=bool(master.variants)
            or master.required_k is not None)
        for o in outcomes:
            if o.ok:
                holdings[o.index] = _Holding(o.mapping, o.token)
            else:
                errors[o.index] = o.error

        # -- k-of-n masters ------------------------------------------------
        if master.required_k is not None:
            if len(holdings) >= master.required_k:
                keep = sorted(holdings)[: master.required_k]
                surplus = {i: holdings[i] for i in holdings
                           if i not in keep}
                self._cancel_holdings(surplus)
                kept = {i: holdings[i] for i in keep}
                return self._success(request, m_idx, None, kept)
            self._cancel_holdings(holdings)
            return ScheduleFeedback(
                request=request, ok=False,
                failure_kind=FailureKind.RESOURCES,
                failure_detail=(f"k-of-n: only {len(holdings)} of "
                                f"{master.required_k} required entries "
                                f"reserved"),
                entry_errors=errors)

        failed = sorted(set(range(len(entries))) - set(holdings))
        if not failed:
            return self._success(request, m_idx, None, holdings)

        # -- variant fallback ------------------------------------------------
        tried: List[VariantSchedule] = []
        current_entries = entries
        while failed and len(tried) < self.max_variant_attempts:
            variant = master.select_variant(failed, exclude=tried)
            if variant is None:
                break
            tried.append(variant)
            self.stats.variant_attempts += 1
            self.metrics.count("enactor_variant_attempts_total")
            new_entries = master.resolve(variant)

            with self.spans.span_if_active("enactor.variant", step="6",
                                           label=variant.label) as v_span:
                if self.naive_variant_handling:
                    # ablation: cancel everything and re-reserve the variant
                    self._cancel_holdings(holdings)
                    holdings = {}
                    to_reserve = list(enumerate(new_entries))
                else:
                    to_reserve = []
                    for idx, replacement in variant.replacements.items():
                        held = holdings.get(idx)
                        if held is not None:
                            if held.mapping.same_target(replacement):
                                # anti-thrashing: keep the reservation
                                continue
                            self._cancel_holdings({idx: held})
                            del holdings[idx]
                        to_reserve.append((idx, replacement))
                    # failed entries not replaced cannot exist (covers()
                    # holds)

                outcomes = self._reserve(to_reserve, rtype, duration,
                                         start_time, timeout)
                for o in outcomes:
                    if o.ok:
                        holdings[o.index] = _Holding(o.mapping, o.token)
                        errors.pop(o.index, None)
                    else:
                        errors[o.index] = o.error
                current_entries = new_entries
                failed = sorted(set(range(len(current_entries)))
                                - set(holdings))
                v_span.set_attribute("ok", not failed)
                if failed:
                    v_span.set_status("error")
            if not failed:
                return self._success(request, m_idx, variant, holdings)

        self._cancel_holdings(holdings)
        return ScheduleFeedback(
            request=request, ok=False,
            failure_kind=FailureKind.RESOURCES,
            failure_detail=f"master {m_idx}: entries {failed} unreservable "
                           f"after {len(tried)} variant(s)",
            entry_errors=errors)

    def _success(self, request: ScheduleRequestList, m_idx: int,
                 variant: Optional[VariantSchedule],
                 holdings: Dict[int, _Holding]) -> ScheduleFeedback:
        entries = [(i, holdings[i].mapping) for i in sorted(holdings)]
        handle = _ReservationSet(m_idx, entries, dict(holdings))
        return ScheduleFeedback(
            request=request, ok=True, master_index=m_idx, variant=variant,
            reserved_entries=[m for _, m in entries],
            reservation_handle=handle)

    # ------------------------------------------------------------------
    # cancel_reservations
    # ------------------------------------------------------------------
    def cancel_reservations(self, feedback: ScheduleFeedback) -> int:
        """Release every reservation held by a successful feedback."""
        handle = self._handle_of(feedback)
        n = len(handle.holdings)
        self._cancel_holdings(handle.holdings)
        handle.holdings.clear()
        return n

    # ------------------------------------------------------------------
    # enact_schedule
    # ------------------------------------------------------------------
    def _handle_of(self, feedback: ScheduleFeedback) -> _ReservationSet:
        handle = feedback.reservation_handle
        if not isinstance(handle, _ReservationSet):
            raise EnactmentError(
                "feedback carries no reservation handle — call "
                "make_reservations first and check feedback.ok")
        return handle

    def enact_schedule(self, feedback: ScheduleFeedback,
                       rollback_on_failure: bool = False) -> EnactResult:
        """Instantiate objects on the reserved resources (steps 7-11).

        Invokes ``create_instance`` with directed placement (LOID +
        reservation token) on each entry's Class object.  "The class objects
        report success/failure codes, and the Enactor returns the result to
        the Scheduler."
        """
        handle = self._handle_of(feedback)
        if handle.enacted:
            raise EnactmentError("this reservation set was already enacted")
        result = EnactResult(ok=True)
        with self.spans.span_if_active("enactor.enact", step="7-11",
                                       entries=len(handle.entries)
                                       ) as e_span:
            with self.metrics.time("enactor_step_seconds", step="enact"):
                self._enact_entries(handle, result)
            e_span.set_attribute("ok", result.ok)
            if not result.ok:
                e_span.set_status("error")
        handle.enacted = True
        if result.ok:
            self.stats.enactments += 1
        else:
            self.stats.enact_failures += 1
            result.detail = "; ".join(
                f"entry {i}: {r.reason}"
                for i, r in sorted(result.entry_results.items())
                if not r.ok)
            if rollback_on_failure and result.created:
                for loid in result.created:
                    class_obj = self.resolver(loid.class_loid())
                    if isinstance(class_obj, ClassObject):
                        try:
                            class_obj.destroy_instance(
                                loid, now=self.transport.sim.now)
                        except Exception:
                            pass
                result.created = []
            if rollback_on_failure and result.suspect:
                # unacked creates: resolve each suspect token to the
                # instances the Class actually started under it
                reaped = 0
                for class_obj, token in result.suspect:
                    reaped += len(class_obj.reap_reserved(
                        token, now=self.transport.sim.now))
                if reaped:
                    self.stats.unacked_reaps += reaped
                    self.metrics.count(
                        "enactor_unacked_creates_reaped_total", reaped)
        self.metrics.count("enactor_enactments_total",
                           ok=str(result.ok).lower())
        self.tracer.emit("enactor", "enacted", ok=result.ok,
                         created=len(result.created))
        return result

    def _enact_entries(self, handle: _ReservationSet,
                       result: EnactResult) -> None:
        """Steps 7-11: create instances for each held entry in place."""
        for idx, mapping in handle.entries:
            holding = handle.holdings.get(idx)
            if holding is None:
                continue  # cancelled out from under us
            class_obj = self.resolver(mapping.class_loid)
            if not isinstance(class_obj, ClassObject):
                result.entry_results[idx] = CreateResult(
                    False, reason=f"unknown class {mapping.class_loid}")
                result.ok = False
                continue
            host = self.resolver(mapping.host_loid)
            placement = Placement(host_loid=mapping.host_loid,
                                  vault_loid=mapping.vault_loid,
                                  reservation_token=holding.token,
                                  implementation=mapping.implementation)
            if mapping.gang > 1:
                def create(p=placement, n=mapping.gang, c=class_obj):
                    return c.create_instances(
                        p, n, now=self.transport.sim.now)
            else:
                def create(p=placement, c=class_obj):
                    return c.create_instance(
                        p, now=self.transport.sim.now)
            try:
                if host is not None:
                    created = self.transport.invoke(
                        self.location, host.location, create,
                        label="create_instance")
                else:
                    created = create()
            except Exception as exc:
                created = CreateResult(
                    False, reason=f"{type(exc).__name__}: {exc}")
                if isinstance(exc, NetworkError):
                    # the create may have executed with its ack lost —
                    # remember the token so rollback can reap blind
                    result.suspect.append((class_obj, holding.token))
            result.entry_results[idx] = created
            if created.ok and created.loid is not None:
                result.created.extend(created.loids or [created.loid])
            else:
                result.ok = False
