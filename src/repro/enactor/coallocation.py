"""Co-allocation: concurrent reservation negotiation across domains.

"Note that this may require the Enactor to negotiate with several resources
from different administrative domains to perform co-allocation" (section 3).

:class:`CoAllocator` turns a set of schedule entries into one parallel batch
of ``make_reservation`` calls through the transport, so the wall-clock cost
of a multi-domain negotiation is the *slowest* domain's round trip, not the
sum (experiment E8 measures this against sequential negotiation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..hosts.reservations import ReservationToken, ReservationType
from ..naming.loid import LOID
from ..net.topology import NetLocation
from ..net.transport import Call, Transport
from ..schedule.mapping import ScheduleMapping

__all__ = ["CoAllocator", "ReservationOutcome"]

Resolver = Callable[[LOID], Any]


@dataclass
class ReservationOutcome:
    """Result of one reservation request within a batch."""

    index: int
    mapping: ScheduleMapping
    token: Optional[ReservationToken] = None
    error: str = ""
    #: the raw failure, kept so retry layers can classify retryability
    exception: Optional[Exception] = None

    @property
    def ok(self) -> bool:
        return self.token is not None


class CoAllocator:
    """Issues reservation batches and cancellations through the transport."""

    def __init__(self, transport: Transport, resolver: Resolver,
                 src: Optional[NetLocation] = None,
                 requester_domain: str = "",
                 offered_price: float = 0.0,
                 sequential: bool = False):
        self.transport = transport
        self.resolver = resolver
        self.src = src
        self.requester_domain = requester_domain
        self.offered_price = offered_price
        #: ablation knob — negotiate one resource at a time (E8 baseline)
        self.sequential = sequential
        self.requests_issued = 0

    # -- reservation ---------------------------------------------------------
    def reserve_batch(self, indexed_entries: Sequence[Tuple[int,
                                                            ScheduleMapping]],
                      rtype: ReservationType,
                      duration: float,
                      start_time: float,
                      timeout: float) -> List[ReservationOutcome]:
        """Request a reservation for each (index, mapping) pair."""
        outcomes: List[ReservationOutcome] = []
        calls: List[Call] = []
        call_slots: List[int] = []
        for pos, (idx, mapping) in enumerate(indexed_entries):
            outcome = ReservationOutcome(index=idx, mapping=mapping)
            outcomes.append(outcome)
            host = self.resolver(mapping.host_loid)
            if host is None:
                outcome.error = f"unknown host {mapping.host_loid}"
                continue
            calls.append(Call(
                src=self.src, dst=host.location,
                fn=host.make_reservation,
                args=(mapping.vault_loid, mapping.class_loid),
                kwargs=dict(rtype=rtype, start_time=start_time,
                            duration=duration, timeout=timeout,
                            requester_domain=self.requester_domain,
                            offered_price=self.offered_price),
                label=f"make_reservation[{idx}]",
                context=self.transport.spans.current_context()))
            call_slots.append(pos)
        self.requests_issued += len(calls)

        if self.sequential:
            results = []
            for call in calls:
                try:
                    value = self.transport.invoke(
                        call.src, call.dst, call.fn, *call.args,
                        label=call.label, **call.kwargs)
                    results.append((True, value, None))
                except Exception as exc:
                    results.append((False, None, exc))
        else:
            raw = self.transport.parallel_invoke(calls)
            results = [(o.ok, o.value, o.error) for o in raw]

        for (ok, value, error), pos in zip(results, call_slots):
            if ok:
                outcomes[pos].token = value
            else:
                outcomes[pos].error = (f"{type(error).__name__}: {error}"
                                       if error is not None else "failed")
                outcomes[pos].exception = error
        return outcomes

    # -- cancellation -----------------------------------------------------------
    def cancel_batch(self, holdings: Sequence[Tuple[ScheduleMapping,
                                                    ReservationToken]]
                     ) -> int:
        """Cancel reservations; returns how many cancellations were sent.

        Cancellation failures are swallowed — a dead host's reservation will
        simply expire.
        """
        calls: List[Call] = []
        for mapping, token in holdings:
            host = self.resolver(mapping.host_loid)
            if host is None:
                continue
            calls.append(Call(src=self.src, dst=host.location,
                              fn=host.cancel_reservation, args=(token,),
                              label="cancel_reservation",
                              context=self.transport.spans.current_context()))
        if not calls:
            return 0
        self.transport.parallel_invoke(calls)
        return len(calls)

    def domains_involved(self,
                         entries: Sequence[ScheduleMapping]) -> List[str]:
        """Distinct administrative domains named by a schedule."""
        domains = set()
        for mapping in entries:
            host = self.resolver(mapping.host_loid)
            if host is not None:
                domains.add(host.domain)
        return sorted(domains)
