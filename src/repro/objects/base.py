"""The Legion object base class: lifecycle, attributes, and RGE hooks.

"All Legion objects automatically support shutdown and restart, and therefore
any active object can be migrated by shutting it down, moving the passive
state to a new Vault if necessary, and activating the object on another host"
(paper section 2.1).

Lifecycle states::

      create_instance            deactivateObject            killObject
   (Class places object)   ACTIVE ------------------> INERT -----------> DEAD
                              ^                          |
                              +------- reactivate -------+
                               (triggered by method access)

While INERT, the object's state lives solely in its OPR on a Vault.  The
:class:`LegionObject` carries placement bookkeeping (current host and vault
LOIDs) used by the Enactor and the Monitor during migration.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import ObjectStateError
from ..naming.loid import LOID
from .attributes import AttributeDatabase
from .opr import OPR
from .rge import TriggerEngine

__all__ = ["LegionObject", "ObjectState"]


class ObjectState:
    """Lifecycle state constants."""

    ACTIVE = "active"
    INERT = "inert"
    DEAD = "dead"


class LegionObject:
    """Base class for every object in the (simulated) metasystem.

    Subclasses override :meth:`save_state` / :meth:`restore_state` to define
    what persists across deactivation, and may define triggers on their
    :attr:`rge` engine.
    """

    def __init__(self, loid: LOID, class_loid: Optional[LOID] = None):
        self.loid = loid
        self.class_loid = class_loid if class_loid is not None else loid
        self.attributes = AttributeDatabase()
        self.rge = TriggerEngine(self)
        self.state = ObjectState.ACTIVE
        # placement bookkeeping, maintained by Class objects / the Enactor
        self.host_loid: Optional[LOID] = None
        self.vault_loid: Optional[LOID] = None
        #: home before the last deactivation (for migration accounting)
        self.last_host_loid: Optional[LOID] = None
        self._opr_version = 0
        self.activation_count = 1
        self.migration_count = 0

    # -- state persistence hooks --------------------------------------------
    def save_state(self) -> Dict[str, Any]:
        """Return the application state to persist in the OPR.

        The default persists nothing beyond metadata; stateful subclasses
        override this (and :meth:`restore_state`).
        """
        return {}

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore application state from an OPR snapshot."""

    # -- lifecycle ------------------------------------------------------------
    def make_opr(self, now: float = 0.0) -> OPR:
        """Snapshot the current state into a new OPR (object stays ACTIVE)."""
        if self.state == ObjectState.DEAD:
            raise ObjectStateError(f"{self.loid} is dead")
        self._opr_version += 1
        return OPR(
            loid=self.loid,
            class_loid=self.class_loid,
            state=self.save_state(),
            version=self._opr_version,
            saved_at=now,
        )

    def deactivate(self, now: float = 0.0) -> OPR:
        """Shut down: persist state to an OPR and become INERT."""
        if self.state != ObjectState.ACTIVE:
            raise ObjectStateError(
                f"cannot deactivate {self.loid} in state {self.state}")
        opr = self.make_opr(now)
        self.state = ObjectState.INERT
        self.last_host_loid = self.host_loid
        self.host_loid = None
        return opr

    def reactivate(self, opr: OPR, host_loid: LOID, vault_loid: LOID,
                   now: float = 0.0) -> None:
        """Restart from an OPR on a (possibly different) host."""
        if self.state == ObjectState.DEAD:
            raise ObjectStateError(f"{self.loid} is dead")
        if self.state == ObjectState.ACTIVE:
            raise ObjectStateError(f"{self.loid} is already active")
        if opr.loid != self.loid:
            raise ObjectStateError(
                f"OPR for {opr.loid} cannot reactivate {self.loid}")
        self.restore_state(opr.state)
        self._opr_version = opr.version
        self.state = ObjectState.ACTIVE
        previous = self.host_loid or self.last_host_loid
        if previous is not None and previous != host_loid:
            self.migration_count += 1
        self.host_loid = host_loid
        self.vault_loid = vault_loid
        self.activation_count += 1

    def kill(self) -> None:
        """Destroy the object; it can never be reactivated."""
        self.state = ObjectState.DEAD
        self.host_loid = None

    # -- convenience ------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        return self.state == ObjectState.ACTIVE

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.loid} {self.state}>"
