"""Reflective Graph and Event (RGE) trigger mechanism.

The paper (sections 2.1, 3.5) uses RGE for exactly one RMI purpose: *event
triggers* — "guarded statements which raise events if the guard evaluates to
a boolean true", with externally registered *outcalls* performed when a
trigger fires (e.g. a Monitor asking a Host to notify it when load crosses a
threshold, so migration can be initiated).

We implement that contract: a :class:`TriggerEngine` owned by each Legion
object evaluates guards against the object's state whenever the object polls
(Hosts poll at their periodic state re-assessment), raises named events, and
performs registered outcalls.  Edge- vs level-triggered semantics are
selectable; edge-triggered (the default) fires only on a False→True guard
transition, preventing an outcall storm while a condition persists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

__all__ = ["Trigger", "TriggerEngine", "TriggerFiring"]

Guard = Callable[[Any], bool]
Outcall = Callable[["TriggerFiring"], None]


@dataclass(frozen=True)
class TriggerFiring:
    """Delivered to outcalls when a trigger's guard becomes true."""

    event_name: str
    source: Any            # the object owning the trigger engine (e.g. a Host)
    time: float
    details: Dict[str, Any] = field(default_factory=dict)


class Trigger:
    """A guarded event source."""

    def __init__(self, event_name: str, guard: Guard,
                 edge_triggered: bool = True,
                 min_interval: float = 0.0):
        """
        Parameters
        ----------
        event_name:
            Name of the event raised when the guard holds.
        guard:
            Callable receiving the owning object; returns truth of the guard.
        edge_triggered:
            Fire only on False→True transitions (default).  Level-triggered
            triggers fire on every poll while the guard holds.
        min_interval:
            Minimum virtual time between firings (rate limiting).
        """
        if not callable(guard):
            raise TypeError("guard must be callable")
        self.event_name = event_name
        self.guard = guard
        self.edge_triggered = edge_triggered
        self.min_interval = float(min_interval)
        self._was_true = False
        self._last_fire = float("-inf")
        self.fire_count = 0

    def evaluate(self, owner: Any, now: float) -> bool:
        """Poll the guard; return True when the trigger should fire."""
        holds = bool(self.guard(owner))
        should_fire = holds and (not self.edge_triggered or not self._was_true)
        if should_fire and now - self._last_fire < self.min_interval:
            # Rate-limited: defer the edge (leave _was_true unset) so the
            # pending transition still fires once the interval elapses.
            if not holds:
                self._was_true = False
            return False
        self._was_true = holds
        if should_fire:
            self._last_fire = now
            self.fire_count += 1
        return should_fire


class TriggerEngine:
    """Per-object registry of triggers and outcalls.

    Outcalls are registered per event name ("register an outcall with the
    Host Objects; this outcall will be performed when a trigger's guard
    evaluates to true", section 3.5).  Outcall exceptions are isolated: a
    failing Monitor must not corrupt the Host.
    """

    def __init__(self, owner: Any):
        self.owner = owner
        self._triggers: List[Trigger] = []
        self._outcalls: Dict[str, List[Outcall]] = {}
        self._failed_outcalls = 0
        self.firings: List[TriggerFiring] = []

    # -- registration -----------------------------------------------------
    def add_trigger(self, trigger: Trigger) -> Trigger:
        self._triggers.append(trigger)
        return trigger

    def define_trigger(self, event_name: str, guard: Guard,
                       edge_triggered: bool = True,
                       min_interval: float = 0.0) -> Trigger:
        return self.add_trigger(
            Trigger(event_name, guard, edge_triggered, min_interval))

    def register_outcall(self, event_name: str, outcall: Outcall) -> None:
        if not callable(outcall):
            raise TypeError("outcall must be callable")
        self._outcalls.setdefault(event_name, []).append(outcall)

    def unregister_outcall(self, event_name: str, outcall: Outcall) -> None:
        callbacks = self._outcalls.get(event_name, [])
        if outcall in callbacks:
            callbacks.remove(outcall)

    # -- evaluation ---------------------------------------------------------
    def poll(self, now: float, **details: Any) -> List[TriggerFiring]:
        """Evaluate all guards; fire events and perform outcalls."""
        fired: List[TriggerFiring] = []
        for trig in self._triggers:
            if trig.evaluate(self.owner, now):
                firing = TriggerFiring(trig.event_name, self.owner, now,
                                       dict(details))
                fired.append(firing)
                self.firings.append(firing)
                for outcall in list(self._outcalls.get(trig.event_name, [])):
                    try:
                        outcall(firing)
                    except Exception:
                        self._failed_outcalls += 1
        return fired

    @property
    def failed_outcalls(self) -> int:
        return self._failed_outcalls

    @property
    def triggers(self) -> List[Trigger]:
        return list(self._triggers)
