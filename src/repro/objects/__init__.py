"""Legion object runtime: attribute databases, lifecycle, RGE triggers,
OPRs, and Class objects."""

from .attributes import AttributeDatabase
from .base import LegionObject, ObjectState
from .class_object import ClassObject, CreateResult, Implementation, Placement
from .opr import OPR
from .rge import Trigger, TriggerEngine, TriggerFiring

__all__ = [
    "AttributeDatabase",
    "LegionObject", "ObjectState",
    "ClassObject", "Implementation", "Placement", "CreateResult",
    "OPR",
    "Trigger", "TriggerEngine", "TriggerFiring",
]
