"""The extensible per-object attribute database.

"All Legion objects include an extensible attribute database, the contents of
which are determined by the type of the object" (paper section 3.1).  Host
objects populate theirs with architecture, OS, load, available memory, and —
beyond the minimal triple used by most schedulers — site-policy descriptors
such as price per CPU-second or domains from which instantiation requests are
refused.

Attributes are named values.  Values may be scalars (str/int/float/bool) or
flat lists of scalars; queries treat list-valued attributes as "any element
matches".  The database timestamps every write so Collections can report
record staleness (experiment E6).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

__all__ = ["AttributeDatabase", "Scalar", "AttrValue"]

Scalar = Union[str, int, float, bool]
AttrValue = Union[Scalar, List[Scalar]]

_SCALARS = (str, int, float, bool)


def _check_value(name: str, value: Any) -> AttrValue:
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        out: List[Scalar] = []
        for item in value:
            if not isinstance(item, _SCALARS):
                raise TypeError(
                    f"attribute {name!r}: list elements must be scalars, "
                    f"got {type(item).__name__}")
            out.append(item)
        return out
    raise TypeError(f"attribute {name!r}: unsupported value type "
                    f"{type(value).__name__}")


class AttributeDatabase:
    """A mapping of attribute names to scalar or list-of-scalar values."""

    def __init__(self, initial: Optional[Mapping[str, AttrValue]] = None):
        self._attrs: Dict[str, AttrValue] = {}
        self._updated_at: Dict[str, float] = {}
        self._last_update = 0.0
        if initial:
            for k, v in initial.items():
                self.set(k, v)

    # -- writes ---------------------------------------------------------------
    def set(self, name: str, value: AttrValue, now: float = 0.0) -> None:
        if not isinstance(name, str) or not name:
            raise TypeError("attribute names must be non-empty strings")
        self._attrs[name] = _check_value(name, value)
        self._updated_at[name] = now
        self._last_update = max(self._last_update, now)

    def update(self, values: Mapping[str, AttrValue], now: float = 0.0) -> None:
        for k, v in values.items():
            self.set(k, v, now=now)

    def delete(self, name: str) -> None:
        self._attrs.pop(name, None)
        self._updated_at.pop(name, None)

    # -- reads ----------------------------------------------------------------
    def get(self, name: str, default: Any = None) -> Any:
        return self._attrs.get(name, default)

    def __getitem__(self, name: str) -> AttrValue:
        return self._attrs[name]

    def __contains__(self, name: str) -> bool:
        return name in self._attrs

    def __len__(self) -> int:
        return len(self._attrs)

    def __iter__(self) -> Iterator[str]:
        return iter(self._attrs)

    def names(self) -> List[str]:
        return sorted(self._attrs)

    def items(self) -> Iterator[Tuple[str, AttrValue]]:
        return iter(self._attrs.items())

    def updated_at(self, name: str) -> float:
        """Virtual time of the last write to ``name`` (0.0 if never)."""
        return self._updated_at.get(name, 0.0)

    @property
    def last_update(self) -> float:
        """Virtual time of the most recent write to any attribute."""
        return self._last_update

    # -- export ----------------------------------------------------------------
    def snapshot(self) -> Dict[str, AttrValue]:
        """A deep-enough copy safe to ship to a Collection."""
        return {k: (list(v) if isinstance(v, list) else v)
                for k, v in self._attrs.items()}

    def __repr__(self) -> str:  # pragma: no cover
        return f"AttributeDatabase({self._attrs!r})"
