"""Object Persistent Representation (OPR).

"To be executed, a Legion object must have a Vault to hold its persistent
state in an Object Persistent Representation (OPR).  The OPR is used for
migration and for shutdown/restart purposes" (paper section 2.1).

An OPR is a snapshot of an object's application state plus enough metadata
(LOID, class LOID, version counter) to validate a restart.  Vaults store OPRs
keyed by LOID; migration moves the passive OPR between Vaults and reactivates
the object on a new Host.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict

from ..naming.loid import LOID

__all__ = ["OPR"]


@dataclass
class OPR:
    """A passive, self-contained snapshot of an object's state."""

    loid: LOID
    class_loid: LOID
    state: Dict[str, Any] = field(default_factory=dict)
    version: int = 0
    saved_at: float = 0.0
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            # crude but deterministic size model: repr length of the state
            self.size_bytes = max(64, len(repr(self.state)))

    def clone(self) -> "OPR":
        """A deep copy, as if serialized and transferred between Vaults."""
        return OPR(
            loid=self.loid,
            class_loid=self.class_loid,
            state=copy.deepcopy(self.state),
            version=self.version,
            saved_at=self.saved_at,
            size_bytes=self.size_bytes,
        )

    def successor(self, state: Dict[str, Any], now: float) -> "OPR":
        """A new OPR reflecting a later checkpoint of the same object."""
        return OPR(
            loid=self.loid,
            class_loid=self.class_loid,
            state=copy.deepcopy(state),
            version=self.version + 1,
            saved_at=now,
        )
