"""Class objects: type definers *and* active instance managers.

"Classes are also active entities, and act as managers for their instances.
Thus, a Class is the final authority in matters pertaining to its instances,
including object placement.  The Class exports the create_instance() method,
which is responsible for placing an instance on a viable host.
create_instance takes an optional argument suggesting a placement, which is
necessary to implement external Schedulers.  In the absence of this argument,
the Class makes a quick (and almost certainly non-optimal) placement
decision." (paper section 2.1)

The directed-placement argument carries a reservation token (section 3.4):
"This method has an optional argument containing an LOID and a reservation
token. ... The Class object is still responsible for checking the placement
for validity and conformance to local policy, but the Class does not have to
go through the standard placement steps."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import NoImplementationError, UnknownObjectError
from ..naming.loid import LOID, LOIDMinter
from .base import LegionObject, ObjectState

__all__ = ["Implementation", "ClassObject", "Placement", "CreateResult"]


@dataclass(frozen=True)
class Implementation:
    """One available binary implementation of a class.

    Schedulers "query the class for available implementations" (Fig. 7); a
    Host is viable only if some implementation matches its architecture and
    operating system.
    """

    arch: str
    os_name: str
    memory_mb: float = 16.0
    binary_mb: float = 1.0
    relative_speed: float = 1.0  # per-arch tuning factor for runtime models

    def matches(self, arch: str, os_name: str) -> bool:
        return self.arch == arch and self.os_name == os_name


@dataclass(frozen=True)
class Placement:
    """A directed-placement suggestion passed to ``create_instance``."""

    host_loid: LOID
    vault_loid: LOID
    reservation_token: Optional[Any] = None
    #: optional pinned implementation (section 3.3 future work)
    implementation: Optional[Implementation] = None


@dataclass
class CreateResult:
    """Success/failure report from ``create_instance`` (protocol steps 10-11)."""

    ok: bool
    loid: Optional[LOID] = None
    host_loid: Optional[LOID] = None
    vault_loid: Optional[LOID] = None
    reason: str = ""
    #: all created instances (gang creation returns several)
    loids: List[LOID] = field(default_factory=list)


# A resolver maps a LOID to the live object implementing it (wired by the
# Metasystem's object registry); a default placer produces a Placement when
# the caller supplied none.
Resolver = Callable[[LOID], Any]
DefaultPlacer = Callable[["ClassObject", Any], Optional[Placement]]
InstanceFactory = Callable[[LOID, LOID], LegionObject]


def _default_factory(loid: LOID, class_loid: LOID) -> LegionObject:
    return LegionObject(loid, class_loid)


class ClassObject(LegionObject):
    """Manager for a family of instances of one type."""

    def __init__(self, loid: LOID, name: str, minter: LOIDMinter,
                 resolver: Resolver,
                 implementations: Optional[List[Implementation]] = None,
                 instance_factory: InstanceFactory = _default_factory,
                 default_placer: Optional[DefaultPlacer] = None):
        super().__init__(loid, class_loid=loid)
        self.name = name
        self._minter = minter
        self._resolver = resolver
        self._implementations: List[Implementation] = list(
            implementations or [])
        self._instance_factory = instance_factory
        self._default_placer = default_placer
        self.instances: Dict[LOID, LegionObject] = {}
        #: token_id -> loids created under that reservation; lets the
        #: Enactor reap creates whose success ack was lost in transit
        self._creations_by_token: Dict[int, List[LOID]] = {}
        self.attributes.set("class_name", name)
        self.create_attempts = 0
        self.create_failures = 0

    # -- type information (queried by Schedulers, Fig. 7 step 1) -------------
    def add_implementation(self, impl: Implementation) -> None:
        self._implementations.append(impl)

    def get_implementations(self) -> List[Implementation]:
        """The available implementations of this class."""
        return list(self._implementations)

    def resource_requirements(self) -> Dict[str, float]:
        """Minimum resources any implementation needs (scheduler hint)."""
        if not self._implementations:
            return {"memory_mb": 0.0}
        return {
            "memory_mb": min(i.memory_mb for i in self._implementations),
        }

    def implementation_for(self, arch: str, os_name: str) -> Implementation:
        for impl in self._implementations:
            if impl.matches(arch, os_name):
                return impl
        raise NoImplementationError(
            f"class {self.name!r} has no implementation for "
            f"({arch}, {os_name})")

    def supports_platform(self, arch: str, os_name: str) -> bool:
        return any(i.matches(arch, os_name) for i in self._implementations)

    # -- instance management ---------------------------------------------------
    def create_instance(self, placement: Optional[Placement] = None,
                        now: float = 0.0) -> CreateResult:
        """Place and start one instance.

        With ``placement`` (the external-Scheduler path) the Class validates
        the suggestion and presents the reservation token to the Host.
        Without it, the Class falls back to its quick default placer.
        """
        self.create_attempts += 1
        if placement is None:
            if self._default_placer is None:
                self.create_failures += 1
                return CreateResult(False, reason="no placement and no "
                                                  "default placer configured")
            placement = self._default_placer(self, None)
            if placement is None:
                self.create_failures += 1
                return CreateResult(False,
                                    reason="default placer found no host")

        host = self._resolver(placement.host_loid)
        if host is None:
            self.create_failures += 1
            return CreateResult(False, reason=f"unknown host "
                                              f"{placement.host_loid}")

        # Class-side validity check: do we have an implementation for the
        # host's platform?  (The Host re-checks policy and resources itself.)
        arch = host.attributes.get("host_arch", "")
        os_name = host.attributes.get("host_os_name", "")
        if placement.implementation is not None:
            # a pinned implementation must be ours and must fit the host
            impl = placement.implementation
            if impl not in self._implementations:
                self.create_failures += 1
                return CreateResult(
                    False, reason=f"implementation {impl.arch}/"
                                  f"{impl.os_name} is not provided by "
                                  f"class {self.name!r}")
            if not impl.matches(arch, os_name):
                self.create_failures += 1
                return CreateResult(
                    False, reason=f"pinned implementation {impl.arch}/"
                                  f"{impl.os_name} does not match host "
                                  f"platform ({arch}, {os_name})")
        elif not self.supports_platform(arch, os_name):
            self.create_failures += 1
            return CreateResult(
                False, reason=f"no implementation for ({arch}, {os_name})")

        loid = self._minter.mint_instance(self.loid)
        instance = self._instance_factory(loid, self.loid)
        impl = placement.implementation
        if impl is None:
            # the Class's default choice: the first matching binary
            impl = self.implementation_for(arch, os_name)
        if impl.relative_speed != 1.0:
            instance.attributes.set("impl_speedup", impl.relative_speed)
        instance.host_loid = placement.host_loid
        instance.vault_loid = placement.vault_loid

        started = host.start_object(
            instance,
            vault_loid=placement.vault_loid,
            reservation_token=placement.reservation_token,
            now=now,
        )
        if not started.ok:
            self.create_failures += 1
            return CreateResult(False, reason=started.reason)

        self.instances[loid] = instance
        self._note_token(placement.reservation_token, [loid])
        return CreateResult(True, loid=loid,
                            host_loid=placement.host_loid,
                            vault_loid=placement.vault_loid,
                            loids=[loid])

    def create_instances(self, placement: Placement, count: int,
                         now: float = 0.0) -> CreateResult:
        """Gang creation: start ``count`` instances on one (Host, Vault)
        with a single multi-object StartObject call (paper section 3.1:
        "important to support efficient object creation for multiprocessor
        systems").  Requires a reusable reservation token when more than
        one instance is requested."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if count == 1:
            return self.create_instance(placement, now=now)
        self.create_attempts += 1
        host = self._resolver(placement.host_loid)
        if host is None:
            self.create_failures += 1
            return CreateResult(False, reason=f"unknown host "
                                              f"{placement.host_loid}")
        arch = host.attributes.get("host_arch", "")
        os_name = host.attributes.get("host_os_name", "")
        if not self.supports_platform(arch, os_name):
            self.create_failures += 1
            return CreateResult(
                False, reason=f"no implementation for ({arch}, {os_name})")
        impl = placement.implementation
        if impl is None:
            impl = self.implementation_for(arch, os_name)

        instances: List[LegionObject] = []
        for _ in range(count):
            loid = self._minter.mint_instance(self.loid)
            instance = self._instance_factory(loid, self.loid)
            if impl.relative_speed != 1.0:
                instance.attributes.set("impl_speedup",
                                        impl.relative_speed)
            instance.host_loid = placement.host_loid
            instance.vault_loid = placement.vault_loid
            instances.append(instance)

        started = host.start_objects(
            instances, vault_loid=placement.vault_loid,
            reservation_token=placement.reservation_token, now=now)
        if not started.ok:
            self.create_failures += 1
            return CreateResult(False, reason=started.reason)
        for instance in instances:
            self.instances[instance.loid] = instance
        self._note_token(placement.reservation_token,
                         [i.loid for i in instances])
        return CreateResult(True, loid=instances[0].loid,
                            host_loid=placement.host_loid,
                            vault_loid=placement.vault_loid,
                            loids=[i.loid for i in instances])

    def get_instance(self, loid: LOID) -> LegionObject:
        try:
            return self.instances[loid]
        except KeyError:
            raise UnknownObjectError(f"{loid} is not an instance of "
                                     f"{self.name}") from None

    def ensure_active(self, loid: LOID, now: float = 0.0) -> LegionObject:
        """Implicit reactivation on access (paper section 3.1: "object
        reactivation is initiated by an attempt to access the object; no
        explicit Host Object method is necessary").

        If the instance is INERT, its OPR is fetched from its Vault, a
        host is chosen (the Class's quick default placement), and the
        object is restarted there before being returned.  ACTIVE instances
        are returned as-is; DEAD ones raise.
        """
        from ..errors import MigrationError, ObjectStateError
        instance = self.get_instance(loid)
        if instance.state == ObjectState.ACTIVE:
            return instance
        if instance.state == ObjectState.DEAD:
            raise ObjectStateError(f"{loid} is dead")
        vault = (self._resolver(instance.vault_loid)
                 if instance.vault_loid is not None else None)
        if vault is None or not vault.has_opr(loid):
            raise MigrationError(
                f"no OPR available to reactivate {loid}")
        if self._default_placer is None:
            raise MigrationError(
                f"no default placer configured to reactivate {loid}")
        # hint the placer with the object's vault: the chosen host must be
        # able to reach the OPR
        placement = self._default_placer(self, instance.vault_loid)
        if placement is None:
            raise MigrationError(
                f"no viable host found to reactivate {loid}")
        host = self._resolver(placement.host_loid)
        if host is None or not host.vault_ok(instance.vault_loid):
            raise MigrationError(
                f"default placement for {loid} cannot reach its vault "
                f"{instance.vault_loid}")
        instance.reactivate(vault.retrieve_opr(loid),
                            host_loid=host.loid,
                            vault_loid=instance.vault_loid, now=now)
        started = host.start_object(instance, instance.vault_loid,
                                    None, now=now)
        if not started.ok:
            instance.state = ObjectState.INERT
            raise MigrationError(
                f"reactivation of {loid} failed: {started.reason}")
        return instance

    def _note_token(self, token: Any, loids: List[LOID]) -> None:
        if token is not None:
            self._creations_by_token.setdefault(
                token.token_id, []).extend(loids)

    def reap_reserved(self, token: Any, now: float = 0.0) -> List[LOID]:
        """Destroy every live instance created under ``token``.

        The crash-safe half of the create protocol: when a
        ``create_instance`` RPC executes but its success reply is lost,
        the Enactor holds a reservation token for an instance it cannot
        name.  The Class — "the final authority in matters pertaining to
        its instances" — resolves the token to whatever it started under
        it, so the rollback is exact even for unacknowledged creates.
        """
        reaped: List[LOID] = []
        for loid in self._creations_by_token.pop(token.token_id, []):
            if loid in self.instances:
                self.destroy_instance(loid, now=now)
                reaped.append(loid)
        return reaped

    def destroy_instance(self, loid: LOID, now: float = 0.0) -> None:
        """Kill an instance and release its host slot."""
        instance = self.get_instance(loid)
        if instance.host_loid is not None:
            host = self._resolver(instance.host_loid)
            if host is not None:
                host.kill_object(loid, now=now)
        instance.kill()
        del self.instances[loid]

    def active_instances(self) -> List[LegionObject]:
        return [o for o in self.instances.values()
                if o.state == ObjectState.ACTIVE]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ClassObject {self.name!r} {self.loid} "
                f"instances={len(self.instances)}>")
