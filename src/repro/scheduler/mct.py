"""Min-Completion-Time (MCT) Scheduler — the SmartNet family (paper §5).

"SmartNet provides scheduling frameworks for heterogeneous resources" —
its core heuristics assign each task to the machine that minimizes the
task's *expected completion time*, accounting for work already assigned.
The paper positions SmartNet as complementary (usable inside Legion); this
Scheduler is exactly that: the SmartNet MCT heuristic expressed as a
drop-in Legion Scheduler, using Collection state plus the class's declared
work estimate.

The greedy MCT loop: maintain a per-host "ready time" (when the host would
finish everything assigned so far); assign tasks, longest first (LPT
ordering improves the greedy bound), each to the host whose
``ready_time + work / effective_rate`` is minimal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..collection.records import CollectionRecord
from ..errors import SchedulingError
from ..naming.loid import LOID
from ..schedule.mapping import ScheduleMapping
from ..schedule.schedule import (
    MasterSchedule,
    ScheduleRequestList,
    VariantSchedule,
)
from .base import ObjectClassRequest, Scheduler

__all__ = ["MCTScheduler"]


class MCTScheduler(Scheduler):
    """Greedy LPT/min-completion-time placement with next-best variants."""

    def __init__(self, *args, n_variants: int = 2,
                 work_attr: str = "work_units",
                 default_work: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.n_variants = n_variants
        self.work_attr = work_attr
        self.default_work = default_work

    def _rate_of(self, record: CollectionRecord) -> float:
        speed = float(record.get("host_speed", 1.0))
        load = float(record.get("host_load", 0.0))
        return speed / (1.0 + max(0.0, load))

    def _work_of(self, request: ObjectClassRequest) -> float:
        """Expected per-instance work: SmartNet's 'compute characteristics'
        — here taken from the class's attribute surface if present."""
        value = request.class_obj.attributes.get(self.work_attr)
        if value is None:
            return self.default_work
        return float(value)

    def compute_schedule(self, requests: Sequence[ObjectClassRequest]
                         ) -> ScheduleRequestList:
        # expand to (request, work) task list, LPT order
        tasks: List[tuple] = []
        host_pool: Dict[LOID, CollectionRecord] = {}
        per_class_records: Dict[LOID, List[CollectionRecord]] = {}
        for request in requests:
            records = self.viable_hosts(request.class_obj)
            if not records:
                raise SchedulingError(
                    f"no viable hosts for class "
                    f"{request.class_obj.name!r}")
            per_class_records[request.class_obj.loid] = records
            for record in records:
                host_pool[record.member] = record
            work = self._work_of(request)
            for _ in range(request.count):
                tasks.append((work, request.class_obj))
        tasks.sort(key=lambda t: -t[0])  # longest processing time first

        ready: Dict[LOID, float] = {loid: 0.0 for loid in host_pool}
        entries: List[ScheduleMapping] = []
        alternates: List[List[ScheduleMapping]] = []
        order: List[int] = []  # original task order -> entry index
        for work, class_obj in tasks:
            records = per_class_records[class_obj.loid]

            def completion(record: CollectionRecord) -> float:
                return (ready[record.member]
                        + work / max(self._rate_of(record), 1e-9))

            ranked = sorted(records, key=lambda r: (completion(r),
                                                    r.member))
            best = ranked[0]
            ready[best.member] += work / max(self._rate_of(best), 1e-9)
            vaults = self.compatible_vaults_of(best)
            if not vaults:
                raise SchedulingError(
                    f"host {best.member} advertises no compatible vaults")
            entries.append(ScheduleMapping(class_obj.loid, best.member,
                                           vaults[0]))
            alts = []
            for record in ranked[1: 1 + self.n_variants]:
                v = self.compatible_vaults_of(record)
                if v:
                    alts.append(ScheduleMapping(class_obj.loid,
                                                record.member, v[0]))
            alternates.append(alts)

        master = MasterSchedule(entries, label="mct")
        for v in range(self.n_variants):
            replacements = {}
            for j, alts in enumerate(alternates):
                if v < len(alts) and not alts[v].same_target(entries[j]):
                    replacements[j] = alts[v]
            if replacements:
                master.add_variant(VariantSchedule(
                    replacements, label=f"mct-alt-{v + 1}"))
        return ScheduleRequestList([master], label="mct")
