"""Schedulers: the framework plus the paper's policies (Random, IRS) and
the "smarter" policies its conclusion promises (load-aware, stencil-aware,
round-robin, k-of-n), and the Fig. 2 layering strategies."""

from .base import (
    ObjectClassRequest,
    Scheduler,
    SchedulingOutcome,
    implementation_query,
)
from .gang import GangScheduler
from .irs import IRSScheduler
from .kofn import KofNScheduler
from .layering import (
    AppDoesItAll,
    AppWithRMServices,
    CombinedSchedulerRM,
    LayeringOutcome,
    LayeringStrategy,
    SeparateLayers,
)
from .load_aware import LoadAwareScheduler
from .mct import MCTScheduler
from .random_sched import RandomScheduler
from .round_robin import RoundRobinScheduler
from .stencil import StencilScheduler, grid_comm_cost, snake_order

__all__ = [
    "Scheduler", "ObjectClassRequest", "SchedulingOutcome",
    "implementation_query",
    "RandomScheduler", "IRSScheduler", "LoadAwareScheduler",
    "MCTScheduler", "GangScheduler",
    "RoundRobinScheduler", "StencilScheduler", "KofNScheduler",
    "grid_comm_cost", "snake_order",
    "LayeringStrategy", "LayeringOutcome", "AppDoesItAll",
    "AppWithRMServices", "CombinedSchedulerRM", "SeparateLayers",
]
