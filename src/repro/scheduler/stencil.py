"""Stencil-aware Scheduler (paper section 4.3).

"We are working with the DoD MSRC in Stennis, Mississippi to develop a
Scheduler for an MPI-based ocean simulation which uses nearest-neighbor
communication within a 2-D grid."

The placement problem: ``rows x cols`` instances of one class communicate
with their 4-neighbours every iteration.  Communication cost depends on
where neighbours land: same host < same domain < different domains.  The
scheduler therefore

1. ranks viable hosts by service rate (load-aware substrate reused);
2. orders them so that consecutive hosts share a domain whenever possible;
3. walks the grid in **snake (boustrophedon) order**, assigning consecutive
   grid cells to consecutive host slots — adjacent cells thus land on the
   same host or same domain far more often than random placement does.

:func:`grid_comm_cost` is the metric both E11 and the example application
report: the per-iteration communication cost of a placement.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..collection.records import CollectionRecord
from ..errors import SchedulingError
from ..naming.loid import LOID
from ..schedule.mapping import ScheduleMapping
from ..schedule.schedule import (
    MasterSchedule,
    ScheduleRequestList,
    VariantSchedule,
)
from .base import ObjectClassRequest, Scheduler

__all__ = ["StencilScheduler", "grid_comm_cost", "snake_order"]


def snake_order(rows: int, cols: int) -> List[Tuple[int, int]]:
    """Boustrophedon traversal of an rows x cols grid."""
    order: List[Tuple[int, int]] = []
    for r in range(rows):
        cs = range(cols) if r % 2 == 0 else range(cols - 1, -1, -1)
        for c in cs:
            order.append((r, c))
    return order


def grid_comm_cost(rows: int, cols: int,
                   cell_host: Dict[Tuple[int, int], LOID],
                   host_domain: Dict[LOID, str],
                   same_host_cost: float = 0.0,
                   intra_domain_cost: float = 1.0,
                   inter_domain_cost: float = 20.0) -> float:
    """Per-iteration communication cost of a grid placement.

    Each of the grid's nearest-neighbour edges contributes the cost of the
    link between its endpoints' hosts.  Defaults approximate the 1999
    reality: in-memory ~ free, LAN ~ 1, WAN ~ 20.
    """
    total = 0.0
    for r in range(rows):
        for c in range(cols):
            here = cell_host[(r, c)]
            for dr, dc in ((0, 1), (1, 0)):
                rr, cc = r + dr, c + dc
                if rr >= rows or cc >= cols:
                    continue
                there = cell_host[(rr, cc)]
                if here == there:
                    total += same_host_cost
                elif host_domain.get(here) == host_domain.get(there):
                    total += intra_domain_cost
                else:
                    total += inter_domain_cost
    return total


class StencilScheduler(Scheduler):
    """Domain-clustered snake placement for 2-D stencil applications."""

    def __init__(self, *args, rows: int = 0, cols: int = 0,
                 instances_per_host: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        self.rows = rows
        self.cols = cols
        self.instances_per_host = max(1, instances_per_host)
        #: populated by compute_schedule: grid cell -> entry index
        self.last_grid: Dict[Tuple[int, int], int] = {}

    def _rate_of(self, record: CollectionRecord) -> float:
        speed = float(record.get("host_speed", 1.0))
        load = float(record.get("host_load", 0.0))
        return speed / (1.0 + max(0.0, load))

    def _ordered_hosts(self, class_obj) -> List[CollectionRecord]:
        records = self.viable_hosts(class_obj,
                                    extra_query="$host_slots_free > 0")
        if not records:
            raise SchedulingError(
                f"no viable hosts for class {class_obj.name!r}")
        # group hosts by domain; order domains by aggregate rate so the
        # fastest domains absorb most of the grid; within a domain, best
        # hosts first
        by_domain: Dict[str, List[CollectionRecord]] = {}
        for r in records:
            by_domain.setdefault(str(r.get("host_domain", "?")),
                                 []).append(r)
        for domain in by_domain:
            by_domain[domain].sort(key=lambda r: (-self._rate_of(r),
                                                  r.member))
        domains = sorted(by_domain,
                         key=lambda d: -sum(self._rate_of(r)
                                            for r in by_domain[d]))
        ordered: List[CollectionRecord] = []
        for d in domains:
            ordered.extend(by_domain[d])
        return ordered

    def compute_schedule(self, requests: Sequence[ObjectClassRequest]
                         ) -> ScheduleRequestList:
        if len(requests) != 1:
            raise SchedulingError(
                "StencilScheduler places exactly one class per request")
        request = requests[0]
        class_obj = request.class_obj
        rows, cols = self.rows, self.cols
        if rows * cols == 0:
            # square-ish default decomposition of the requested count
            k = request.count
            rows = int(k ** 0.5) or 1
            while k % rows:
                rows -= 1
            cols = k // rows
        if rows * cols != request.count:
            raise SchedulingError(
                f"grid {rows}x{cols} does not match count {request.count}")

        ordered = self._ordered_hosts(class_obj)
        capacity = len(ordered) * self.instances_per_host
        if capacity < request.count:
            raise SchedulingError(
                f"{len(ordered)} viable hosts x {self.instances_per_host} "
                f"slots < {request.count} instances")

        entries: List[ScheduleMapping] = []
        self.last_grid = {}
        cells = snake_order(rows, cols)
        for slot, cell in enumerate(cells):
            record = ordered[slot // self.instances_per_host]
            vaults = self.compatible_vaults_of(record)
            if not vaults:
                raise SchedulingError(
                    f"host {record.member} advertises no compatible vaults")
            self.last_grid[cell] = len(entries)
            entries.append(ScheduleMapping(
                class_loid=class_obj.loid, host_loid=record.member,
                vault_loid=vaults[0]))

        master = MasterSchedule(entries, label="stencil")
        # variants: spill each entry to the next unused host, preserving
        # as much domain locality as the spare pool allows
        spare = ordered[(request.count + self.instances_per_host - 1)
                        // self.instances_per_host:]
        if spare:
            replacements: Dict[int, ScheduleMapping] = {}
            for j in range(len(entries)):
                record = spare[j % len(spare)]
                vaults = self.compatible_vaults_of(record)
                if vaults:
                    replacements[j] = ScheduleMapping(
                        class_loid=class_obj.loid, host_loid=record.member,
                        vault_loid=vaults[0])
            if replacements:
                master.add_variant(VariantSchedule(replacements,
                                                   label="stencil-spill"))
        return ScheduleRequestList([master], label="stencil")

    # -- evaluation help ----------------------------------------------------
    def placement_cost(self, entries: Sequence[ScheduleMapping],
                       host_domain: Dict[LOID, str],
                       rows: int, cols: int, **cost_kwargs) -> float:
        """Communication cost of the grid produced by the last compute."""
        cell_host = {cell: entries[idx].host_loid
                     for cell, idx in self.last_grid.items()}
        return grid_comm_cost(rows, cols, cell_host, host_domain,
                              **cost_kwargs)
