"""The Random Scheduling Policy (paper section 4.1, Fig. 7).

"The Random Scheduling Policy, as the name implies, randomly selects from
the available resources that appear to be able to run the task.  There is no
consideration of load, speed, memory contention, communication patterns, or
other factors that might affect the completion time of the task.  The goal
here is simplicity, not performance."

The structure below is a line-for-line realization of the Fig. 7 pseudocode:
one master schedule, no variants, no multiple schedules — "the equivalent of
the default schedule generator for Legion Classes in releases prior to 1.5."
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import SchedulingError
from ..schedule.mapping import ScheduleMapping
from ..schedule.schedule import MasterSchedule, ScheduleRequestList
from .base import ObjectClassRequest, Scheduler

__all__ = ["RandomScheduler"]


class RandomScheduler(Scheduler):
    """Generate_Random_Placement (Fig. 7)."""

    def compute_schedule(self, requests: Sequence[ObjectClassRequest]
                         ) -> ScheduleRequestList:
        mappings: List[ScheduleMapping] = []
        for request in requests:                 # for each ObjectClass O
            class_obj = request.class_obj
            # query the class for available implementations;
            # query Collection for Hosts matching available implementations
            records = self.viable_hosts(class_obj)
            if not records:
                raise SchedulingError(
                    f"no viable hosts for class {class_obj.name!r}")
            for _i in range(request.count):      # for i := 1 to k
                record = records[self.rng.integers(0, len(records))]
                vaults = self.compatible_vaults_of(record)
                if not vaults:
                    raise SchedulingError(
                        f"host {record.member} advertises no compatible "
                        f"vaults")
                vault = vaults[self.rng.integers(0, len(vaults))]
                mappings.append(ScheduleMapping(
                    class_loid=class_obj.loid,
                    host_loid=self.host_loid_of(record),
                    vault_loid=vault))
        master = MasterSchedule(mappings, label="random")
        return ScheduleRequestList([master], label="random")
