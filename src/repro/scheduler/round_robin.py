"""Round-robin Scheduler: a deterministic baseline between Random and the
load-aware policy.  Instances are dealt across the viable hosts in LOID
order, remembering the rotation point across calls so successive requests
keep spreading."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import SchedulingError
from ..schedule.mapping import ScheduleMapping
from ..schedule.schedule import (
    MasterSchedule,
    ScheduleRequestList,
    VariantSchedule,
)
from .base import ObjectClassRequest, Scheduler

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler(Scheduler):
    """Deal instances across viable hosts in a stable rotation."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._cursor: Dict[str, int] = {}

    def compute_schedule(self, requests: Sequence[ObjectClassRequest]
                         ) -> ScheduleRequestList:
        master_entries: List[ScheduleMapping] = []
        alternatives: List[ScheduleMapping] = []
        for request in requests:
            class_obj = request.class_obj
            records = sorted(self.viable_hosts(class_obj),
                             key=lambda r: r.member)
            if not records:
                raise SchedulingError(
                    f"no viable hosts for class {class_obj.name!r}")
            key = str(class_obj.loid)
            cursor = self._cursor.get(key, 0)
            for _i in range(request.count):
                record = records[cursor % len(records)]
                alt = records[(cursor + 1) % len(records)]
                cursor += 1
                vaults = self.compatible_vaults_of(record)
                alt_vaults = self.compatible_vaults_of(alt)
                if not vaults or not alt_vaults:
                    raise SchedulingError(
                        f"host {record.member} advertises no compatible "
                        f"vaults")
                master_entries.append(ScheduleMapping(
                    class_loid=class_obj.loid, host_loid=record.member,
                    vault_loid=vaults[0]))
                alternatives.append(ScheduleMapping(
                    class_loid=class_obj.loid, host_loid=alt.member,
                    vault_loid=alt_vaults[0]))
            self._cursor[key] = cursor

        master = MasterSchedule(master_entries, label="round-robin")
        replacements = {
            j: alt for j, alt in enumerate(alternatives)
            if not alt.same_target(master_entries[j])}
        if replacements:
            master.add_variant(VariantSchedule(replacements,
                                               label="rr-next"))
        return ScheduleRequestList([master], label="round-robin")
