"""Load-aware Scheduler — one of the "smarter Schedulers" the paper's
conclusion promises to measure against Random.

Placement rule: rank viable hosts by expected per-job service rate
``speed / (1 + load)`` (descending) using Collection state — possibly stale;
that is the point of experiments E10/E11 — and assign instances to the best
hosts, spreading across hosts before doubling up.  Variants substitute the
next-best hosts, so Enactor feedback degrades gracefully instead of
recomputing from scratch.

An optional ``predicted_load_attr`` makes the ranking read an injected
(e.g. NWS-forecast) attribute instead of the raw ``host_load`` — the E14
experiment toggles exactly this.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..collection.records import CollectionRecord
from ..errors import SchedulingError
from ..naming.loid import LOID
from ..schedule.mapping import ScheduleMapping
from ..schedule.schedule import (
    MasterSchedule,
    ScheduleRequestList,
    VariantSchedule,
)
from .base import ObjectClassRequest, Scheduler

__all__ = ["LoadAwareScheduler"]


class LoadAwareScheduler(Scheduler):
    """Best-rate-first placement with next-best variants."""

    def __init__(self, *args, n_variants: int = 3,
                 predicted_load_attr: str = "",
                 require_free_slot: bool = True,
                 select_implementation: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        self.n_variants = n_variants
        self.predicted_load_attr = predicted_load_attr
        self.require_free_slot = require_free_slot
        #: section 3.3 future work: pin the fastest matching binary
        self.select_implementation = select_implementation

    def _rate_of(self, record: CollectionRecord) -> float:
        speed = float(record.get("host_speed", 1.0))
        load_attr = self.predicted_load_attr or "host_load"
        # computed (injected) attributes live on the Collection, not the
        # raw record — resolve through it so forecasts are visible
        load = self.collection.record_attr(record, load_attr)
        if load is None:
            load = record.get("host_load", 0.0)
        return speed / (1.0 + max(0.0, float(load)))

    def _effective_rate(self, record: CollectionRecord,
                        class_obj) -> float:
        """Host rate, scaled by the best matching binary's speed when
        implementation selection is on."""
        rate = self._rate_of(record)
        if self.select_implementation:
            impl = self.best_implementation_for(class_obj, record)
            if impl is not None:
                rate *= impl.relative_speed
        return rate

    def _ranked_hosts(self, class_obj) -> List[CollectionRecord]:
        extra = "$host_slots_free > 0" if self.require_free_slot else ""
        records = self.viable_hosts(class_obj, extra_query=extra)
        if not records:
            raise SchedulingError(
                f"no viable hosts for class {class_obj.name!r}")
        # descending by rate; LOID order breaks ties deterministically
        return sorted(records,
                      key=lambda r: (-self._effective_rate(r, class_obj),
                                     r.member))

    def _pick_vault(self, record: CollectionRecord) -> LOID:
        vaults = self.compatible_vaults_of(record)
        if not vaults:
            raise SchedulingError(
                f"host {record.member} advertises no compatible vaults")
        return vaults[0]

    def _mapping_for(self, class_obj, record: CollectionRecord
                     ) -> ScheduleMapping:
        impl = (self.best_implementation_for(class_obj, record)
                if self.select_implementation else None)
        return ScheduleMapping(
            class_loid=class_obj.loid, host_loid=record.member,
            vault_loid=self._pick_vault(record), implementation=impl)

    def compute_schedule(self, requests: Sequence[ObjectClassRequest]
                         ) -> ScheduleRequestList:
        master_entries: List[ScheduleMapping] = []
        # per-entry ranked alternatives for variant construction
        alternatives: List[List[ScheduleMapping]] = []
        slots_used: Dict[LOID, int] = {}

        for request in requests:
            class_obj = request.class_obj
            ranked = self._ranked_hosts(class_obj)
            for _i in range(request.count):
                # spread: effective rate discounts hosts already chosen
                def eff(record: CollectionRecord) -> float:
                    extra = slots_used.get(record.member, 0)
                    return (self._effective_rate(record, class_obj)
                            / (1.0 + extra))

                order = sorted(ranked,
                               key=lambda r: (-eff(r), r.member))
                best = order[0]
                slots_used[best.member] = slots_used.get(best.member, 0) + 1
                master_entries.append(self._mapping_for(class_obj, best))
                alternatives.append([
                    self._mapping_for(class_obj, r)
                    for r in order[1: 1 + self.n_variants]])

        master = MasterSchedule(master_entries, label="load-aware")
        # variant v substitutes each entry's v-th alternative where one exists
        for v in range(self.n_variants):
            replacements: Dict[int, ScheduleMapping] = {}
            for j, alts in enumerate(alternatives):
                if v < len(alts) and not alts[v].same_target(
                        master_entries[j]):
                    replacements[j] = alts[v]
            if replacements:
                master.add_variant(VariantSchedule(
                    replacements, label=f"load-aware-alt-{v + 1}"))
        return ScheduleRequestList([master], label="load-aware")
