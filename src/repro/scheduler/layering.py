"""The four resource-management layering schemes (paper Fig. 2).

(a) **Application + Scheduler + RM services in the app** — the application
    does it all: probes resources directly, decides placement, negotiates
    reservations itself.
(b) **Application + Scheduler in the app, RM services separate** — the
    application makes its own placement decision (from Collection data) but
    uses the provided RM services (the Enactor) to negotiate with resources.
(c) **Combined Scheduler + RM services module** — the application hands the
    request to a single combined placement-and-negotiation module (a la
    MESSIAHS).
(d) **Separate Scheduler and RM services** — each function in its own
    module: the most flexible layering, and the one the rest of the paper
    (and this library) assumes.

"Any of these layerings is possible in Legion; the choice of which to use is
up to the individual application writer."  Experiment E2 runs the same
workload through all four and reports the message and latency cost of each
— the modularity tax the paper's design accepts for flexibility.

Inter-module hops are charged through the transport using each module's
service location, so separating modules costs real (simulated) latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..collection.collection import Collection
from ..enactor.enactor import Enactor
from ..errors import LegionError, SchedulingError
from ..hosts.host_object import HostObject
from ..naming.loid import LOID
from ..net.topology import NetLocation
from ..net.transport import Transport
from ..objects.class_object import Placement
from ..schedule.mapping import ScheduleMapping
from ..schedule.schedule import MasterSchedule, ScheduleRequestList
from .base import ObjectClassRequest, Scheduler

__all__ = [
    "LayeringOutcome",
    "LayeringStrategy",
    "AppDoesItAll",
    "AppWithRMServices",
    "CombinedSchedulerRM",
    "SeparateLayers",
]


@dataclass
class LayeringOutcome:
    ok: bool
    created: List[LOID] = field(default_factory=list)
    messages: int = 0
    elapsed: float = 0.0
    detail: str = ""


class LayeringStrategy:
    """Common harness: measure messages and virtual time around place()."""

    name = "abstract"

    def __init__(self, transport: Transport,
                 app_location: Optional[NetLocation] = None):
        self.transport = transport
        self.app_location = app_location

    def place(self, requests: Sequence[ObjectClassRequest]
              ) -> LayeringOutcome:
        before_msgs = self.transport.messages_sent
        before_time = self.transport.sim.now
        outcome = self._place(requests)
        outcome.messages = self.transport.messages_sent - before_msgs
        outcome.elapsed = self.transport.sim.now - before_time
        return outcome

    def _place(self, requests: Sequence[ObjectClassRequest]
               ) -> LayeringOutcome:
        raise NotImplementedError


class AppDoesItAll(LayeringStrategy):
    """Fig. 2(a): the application probes and negotiates with every resource
    itself — no Collection, no Enactor."""

    name = "(a) app does it all"

    def __init__(self, transport: Transport, hosts: Sequence[HostObject],
                 app_location: Optional[NetLocation] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(transport, app_location)
        self.hosts = list(hosts)
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def _place(self, requests: Sequence[ObjectClassRequest]
               ) -> LayeringOutcome:
        outcome = LayeringOutcome(ok=True)
        for request in requests:
            class_obj = request.class_obj
            # direct probing: one RPC per host to read its state
            probed = []
            for host in self.hosts:
                try:
                    attrs = self.transport.invoke(
                        self.app_location, host.location,
                        host.attributes.snapshot, label="probe")
                except LegionError:
                    continue
                if class_obj.supports_platform(
                        str(attrs.get("host_arch", "")),
                        str(attrs.get("host_os_name", ""))):
                    probed.append((host, attrs))
            if not probed:
                return LayeringOutcome(False, detail="no viable host probed")
            # least-loaded viable host, per the app's own logic
            probed.sort(key=lambda p: float(p[1].get("host_load", 0.0)))
            for _i in range(request.count):
                placed = False
                for host, _attrs in probed:
                    vaults = host.get_compatible_vaults()
                    if not vaults:
                        continue
                    try:
                        token = self.transport.invoke(
                            self.app_location, host.location,
                            host.make_reservation, vaults[0],
                            class_obj.loid, label="make_reservation")
                    except LegionError:
                        continue
                    placement = Placement(host.loid, vaults[0], token)
                    created = self.transport.invoke(
                        self.app_location, host.location,
                        class_obj.create_instance, placement,
                        now=self.transport.sim.now,
                        label="create_instance")
                    if created.ok:
                        outcome.created.append(created.loid)
                        placed = True
                        break
                if not placed:
                    outcome.ok = False
                    outcome.detail = "direct negotiation failed"
                    return outcome
        return outcome


class AppWithRMServices(LayeringStrategy):
    """Fig. 2(b): the application decides placement from Collection data but
    delegates negotiation to the RM services (Enactor)."""

    name = "(b) app placement + RM services"

    def __init__(self, transport: Transport, collection: Collection,
                 enactor: Enactor,
                 app_location: Optional[NetLocation] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__(transport, app_location)
        self.collection = collection
        self.enactor = enactor
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def _place(self, requests: Sequence[ObjectClassRequest]
               ) -> LayeringOutcome:
        from .base import implementation_query
        entries: List[ScheduleMapping] = []
        for request in requests:
            class_obj = request.class_obj
            query = implementation_query(class_obj.get_implementations())
            if self.collection.location is not None:
                records = self.transport.invoke(
                    self.app_location, self.collection.location,
                    self.collection.query, query, label="QueryCollection")
            else:
                records = self.collection.query(query)
            if not records:
                return LayeringOutcome(False, detail="no viable hosts")
            for _i in range(request.count):
                record = records[self.rng.integers(0, len(records))]
                vaults = Scheduler.compatible_vaults_of(record)
                if not vaults:
                    return LayeringOutcome(False, detail="host without "
                                                         "vaults")
                entries.append(ScheduleMapping(
                    class_loid=class_obj.loid, host_loid=record.member,
                    vault_loid=vaults[0]))
        request_list = ScheduleRequestList(
            [MasterSchedule(entries, label="app-chosen")], label="(b)")
        feedback = self.enactor.make_reservations(request_list)
        if not feedback.ok:
            return LayeringOutcome(False, detail=feedback.failure_detail)
        result = self.enactor.enact_schedule(feedback)
        return LayeringOutcome(result.ok, created=result.created,
                               detail=result.detail)


class CombinedSchedulerRM(LayeringStrategy):
    """Fig. 2(c): one combined placement + negotiation module at a service
    location; the application makes a single request to it."""

    name = "(c) combined Scheduler + RM module"

    def __init__(self, transport: Transport, scheduler: Scheduler,
                 module_location: Optional[NetLocation] = None,
                 app_location: Optional[NetLocation] = None):
        super().__init__(transport, app_location)
        self.scheduler = scheduler
        self.module_location = module_location

    def _place(self, requests: Sequence[ObjectClassRequest]
               ) -> LayeringOutcome:
        def run_module():
            return self.scheduler.run(requests)
        if self.module_location is not None:
            outcome = self.transport.invoke(
                self.app_location, self.module_location, run_module,
                label="combined-module")
        else:
            outcome = run_module()
        return LayeringOutcome(outcome.ok, created=outcome.created,
                               detail=outcome.detail)


class SeparateLayers(LayeringStrategy):
    """Fig. 2(d): application -> Scheduler -> Enactor -> resources, each in
    its own module with its own location."""

    name = "(d) separate Scheduler / Enactor / RM"

    def __init__(self, transport: Transport, scheduler: Scheduler,
                 scheduler_location: Optional[NetLocation] = None,
                 enactor_location: Optional[NetLocation] = None,
                 app_location: Optional[NetLocation] = None):
        super().__init__(transport, app_location)
        self.scheduler = scheduler
        self.scheduler_location = scheduler_location
        self.enactor_location = enactor_location

    def _place(self, requests: Sequence[ObjectClassRequest]
               ) -> LayeringOutcome:
        # app -> Scheduler hop
        def compute():
            return self.scheduler.compute_schedule(requests)
        try:
            if self.scheduler_location is not None:
                request_list = self.transport.invoke(
                    self.app_location, self.scheduler_location, compute,
                    label="compute_schedule")
            else:
                request_list = compute()
        except SchedulingError as exc:
            return LayeringOutcome(False, detail=str(exc))

        enactor = self.scheduler.enactor
        # Scheduler -> Enactor hop for make_reservations
        def negotiate():
            return enactor.make_reservations(request_list)
        if self.enactor_location is not None:
            feedback = self.transport.invoke(
                self.scheduler_location, self.enactor_location, negotiate,
                label="make_reservations")
        else:
            feedback = negotiate()
        if not feedback.ok:
            return LayeringOutcome(False, detail=feedback.failure_detail)

        # Scheduler confirms, then Enactor enacts (second hop)
        def enact():
            return enactor.enact_schedule(feedback)
        if self.enactor_location is not None:
            result = self.transport.invoke(
                self.scheduler_location, self.enactor_location, enact,
                label="enact_schedule")
        else:
            result = enact()
        return LayeringOutcome(result.ok, created=result.created,
                               detail=result.detail)
