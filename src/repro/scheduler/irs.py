"""The Improved Random Scheduler — IRS (paper section 4.2, Figs. 8-9).

"The improvement we focus on is not in the basic algorithm; the IRS still
selects a random Host and Vault pair.  Rather, we will compute multiple
schedules and accommodate negative feedback from the Enactor."

IRS_Gen_Placement (Fig. 8): generate ``n`` random mappings per object
instance with a *single* Collection lookup per class ("IRS does fewer
lookups in the Collection"); the master schedule takes the first mapping of
each instance, and variant ``l`` (l = 2..n) contains, for each instance, its
l-th mapping — but only those entries "that do not appear in the master
list".

IRS_Wrapper (Fig. 9): up to ``SchedTryLimit`` schedule generations, each
offered to the Enactor up to ``EnactTryLimit`` times; the base class
:meth:`~repro.scheduler.base.Scheduler.run` implements exactly this loop,
parameterized by the two limits.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import SchedulingError
from ..naming.loid import LOID
from ..schedule.mapping import ScheduleMapping
from ..schedule.schedule import (
    MasterSchedule,
    ScheduleRequestList,
    VariantSchedule,
)
from .base import ObjectClassRequest, Scheduler

__all__ = ["IRSScheduler"]


class IRSScheduler(Scheduler):
    """IRS_Gen_Placement + IRS_Wrapper."""

    def __init__(self, *args, n_schedules: int = 4,
                 sched_try_limit: int = 3, enact_try_limit: int = 2,
                 **kwargs):
        super().__init__(*args, **kwargs)
        if n_schedules < 1:
            raise ValueError("n_schedules (NSched) must be >= 1")
        #: NSched — mappings generated per object instance
        self.n_schedules = n_schedules
        # the Fig. 9 wrapper globals
        self.sched_try_limit = sched_try_limit
        self.enact_try_limit = enact_try_limit

    def _random_pair(self, records) -> Tuple[LOID, LOID]:
        record = records[self.rng.integers(0, len(records))]
        vaults = self.compatible_vaults_of(record)
        if not vaults:
            raise SchedulingError(
                f"host {record.member} advertises no compatible vaults")
        vault = vaults[self.rng.integers(0, len(vaults))]
        return self.host_loid_of(record), vault

    def compute_schedule(self, requests: Sequence[ObjectClassRequest]
                         ) -> ScheduleRequestList:
        n = self.n_schedules
        # per-instance candidate lists: instance_lists[j][l] is the l-th
        # mapping generated for instance j
        instance_lists: List[List[ScheduleMapping]] = []
        for request in requests:                    # for each ObjectClass O
            class_obj = request.class_obj
            # one Collection lookup per class, reused for all n candidates
            records = self.viable_hosts(class_obj)
            if not records:
                raise SchedulingError(
                    f"no viable hosts for class {class_obj.name!r}")
            for _i in range(request.count):         # for i := 1 to k
                candidates: List[ScheduleMapping] = []
                for _l in range(n):                 # for l := 1 to n
                    host, vault = self._random_pair(records)
                    candidates.append(ScheduleMapping(
                        class_loid=class_obj.loid, host_loid=host,
                        vault_loid=vault))
                instance_lists.append(candidates)

        # master schedule = first item from each object instance list
        master_entries = [cands[0] for cands in instance_lists]
        master = MasterSchedule(master_entries, label="irs-master")

        # for l := 2 to n: the l-th component of each instance list,
        # keeping only entries that do not appear in the master list
        for l in range(1, n):
            replacements: Dict[int, ScheduleMapping] = {}
            for j, cands in enumerate(instance_lists):
                if not cands[l].same_target(master_entries[j]):
                    replacements[j] = cands[l]
            if replacements:
                master.add_variant(VariantSchedule(
                    replacements, label=f"irs-variant-{l}"))
        return ScheduleRequestList([master], label="irs")
