"""k-out-of-n Scheduler (paper section 3.3, future work).

"We will also support 'k out of n' scheduling, where the Scheduler specifies
an equivalence class of n resources and asks the Enactor to start k
instances of the same object on them."

The scheduler emits one master schedule whose entries name an equivalence
class of ``n`` viable (Host, Vault) pairs, with ``required_k = k``; the
Enactor (which implements the k-of-n admission rule) keeps the first k
reservations it obtains and cancels the rest.  This tolerates stale
Collection data and host failures without any variant machinery — the E15
experiment compares it against exact placement under failures.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import SchedulingError
from ..schedule.mapping import ScheduleMapping
from ..schedule.schedule import MasterSchedule, ScheduleRequestList
from .base import ObjectClassRequest, Scheduler

__all__ = ["KofNScheduler"]


class KofNScheduler(Scheduler):
    """Equivalence-class scheduling: reserve n, keep k."""

    def __init__(self, *args, overprovision: float = 2.0,
                 max_n: int = 64, **kwargs):
        super().__init__(*args, **kwargs)
        if overprovision < 1.0:
            raise ValueError("overprovision must be >= 1.0")
        self.overprovision = overprovision
        self.max_n = max_n

    def compute_schedule(self, requests: Sequence[ObjectClassRequest]
                         ) -> ScheduleRequestList:
        masters: List[MasterSchedule] = []
        for request in requests:
            class_obj = request.class_obj
            records = self.viable_hosts(class_obj)
            if not records:
                raise SchedulingError(
                    f"no viable hosts for class {class_obj.name!r}")
            k = request.count
            n = min(self.max_n, max(k, int(round(k * self.overprovision))),
                    len(records) if len(records) >= k else
                    max(k, len(records)))
            if len(records) < k:
                raise SchedulingError(
                    f"need {k} hosts, Collection knows only "
                    f"{len(records)} viable")
            # random sample without replacement forms the equivalence class
            idx = self.rng.permutation(len(records))[:n]
            entries: List[ScheduleMapping] = []
            for i in idx:
                record = records[int(i)]
                vaults = self.compatible_vaults_of(record)
                if not vaults:
                    continue
                entries.append(ScheduleMapping(
                    class_loid=class_obj.loid, host_loid=record.member,
                    vault_loid=vaults[0]))
            if len(entries) < k:
                raise SchedulingError(
                    f"only {len(entries)} usable equivalence-class members "
                    f"for k={k}")
            masters.append(MasterSchedule(entries, required_k=k,
                                          label=f"kofn-{k}-of-"
                                                f"{len(entries)}"))
        return ScheduleRequestList(masters, label="kofn")
