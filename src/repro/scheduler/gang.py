"""Gang Scheduler — SMP-efficient placement via multi-object StartObject.

Paper section 3.1: "The StartObject function can create one or more
objects; this is important to support efficient object creation for
multiprocessor systems."

This Scheduler packs instances into gangs of up to ``gang_size`` (by
default the destination's CPU count) on multiprocessor hosts: each gang
is ONE schedule entry → ONE reservation → ONE create call on the Class →
ONE multi-object StartObject on the Host.  Against one-instance-per-entry
placement, message count per instance drops by roughly the gang factor
(measured in E21).
"""

from __future__ import annotations

from typing import List, Sequence

from ..collection.records import CollectionRecord
from ..errors import SchedulingError
from ..schedule.mapping import ScheduleMapping
from ..schedule.schedule import MasterSchedule, ScheduleRequestList
from .base import ObjectClassRequest, Scheduler

__all__ = ["GangScheduler"]


class GangScheduler(Scheduler):
    """Pack instances into per-host gangs, biggest SMPs first."""

    def __init__(self, *args, gang_size: int = 0, **kwargs):
        """``gang_size=0`` (default) uses each host's CPU count as its
        gang capacity; a positive value caps gangs uniformly."""
        super().__init__(*args, **kwargs)
        if gang_size < 0:
            raise ValueError("gang_size must be >= 0")
        self.gang_size = gang_size

    def _capacity_of(self, record: CollectionRecord) -> int:
        cpus = int(record.get("host_cpus", 1))
        slots = int(record.get("host_slots_free", cpus))
        capacity = min(max(cpus, 1), max(slots, 0))
        if self.gang_size:
            capacity = min(capacity, self.gang_size)
        return capacity

    def compute_schedule(self, requests: Sequence[ObjectClassRequest]
                         ) -> ScheduleRequestList:
        entries: List[ScheduleMapping] = []
        for request in requests:
            class_obj = request.class_obj
            records = self.viable_hosts(class_obj,
                                        extra_query="$host_slots_free > 0")
            if not records:
                raise SchedulingError(
                    f"no viable hosts for class {class_obj.name!r}")
            # biggest machines first, then least loaded
            records.sort(key=lambda r: (-self._capacity_of(r),
                                        float(r.get("host_load", 0.0)),
                                        r.member))
            remaining = request.count
            for record in records:
                if remaining <= 0:
                    break
                capacity = self._capacity_of(record)
                if capacity < 1:
                    continue
                gang = min(capacity, remaining)
                vaults = self.compatible_vaults_of(record)
                if not vaults:
                    continue
                entries.append(ScheduleMapping(
                    class_obj.loid, record.member, vaults[0], gang=gang))
                remaining -= gang
            if remaining > 0:
                raise SchedulingError(
                    f"insufficient aggregate capacity: {remaining} of "
                    f"{request.count} instances unplaced")
        return ScheduleRequestList([MasterSchedule(entries, label="gang")],
                                   label="gang")
