"""Scheduler framework (paper sections 3.3 and 4).

"The Scheduler computes the mapping of objects to resources.  At a minimum,
the Scheduler knows how many instances of each class must be started. ...
The Scheduler obtains resource description information by querying the
Collection, and then computes a mapping of object instances to resources.
This mapping is passed on to the Enactor for implementation."

:class:`Scheduler` provides the substrate pieces every placement policy
needs — querying classes for implementations, building the viability query,
querying the Collection (through the transport, so information costs are
charged), and the negotiate/enact wrapper loop — so that concrete policies
(Random, IRS, load-aware, stencil-aware, ...) implement only
:meth:`compute_schedule`.  This realizes the paper's "cost that scales with
capability" claim: the Random Scheduler is ~20 lines on top of this base.
"""

from __future__ import annotations

import re as _re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..collection.collection import Collection
from ..collection.records import CollectionRecord
from ..enactor.enactor import Enactor, EnactResult
from ..errors import InvalidLOIDError, SchedulingError
from ..naming.loid import LOID
from ..net.topology import NetLocation
from ..net.transport import Transport
from ..objects.class_object import ClassObject, Implementation
from ..obs.spans import SpanTracer
from ..schedule.schedule import ScheduleFeedback, ScheduleRequestList

__all__ = [
    "ObjectClassRequest",
    "SchedulingOutcome",
    "Scheduler",
    "implementation_query",
]


@dataclass(frozen=True)
class ObjectClassRequest:
    """How many instances of one class must be started."""

    class_obj: ClassObject
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")


@dataclass
class SchedulingOutcome:
    """What the scheduling wrapper returns to the application."""

    ok: bool
    created: List[LOID] = field(default_factory=list)
    feedback: Optional[ScheduleFeedback] = None
    enact_result: Optional[EnactResult] = None
    schedule_tries: int = 0
    enact_tries: int = 0
    collection_queries: int = 0
    elapsed: float = 0.0
    detail: str = ""


def _quote(value: str) -> str:
    return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'


def implementation_query(implementations: Sequence[Implementation],
                         require_up: bool = True) -> str:
    """Build the Collection query matching hosts that can run any of the
    given implementations (the Fig. 7 "query Collection for Hosts matching
    available implementations" step)."""
    if not implementations:
        raise SchedulingError("class has no implementations to match")
    clauses = []
    seen = set()
    for impl in implementations:
        key = (impl.arch, impl.os_name)
        if key in seen:
            continue
        seen.add(key)
        clauses.append(f"($host_arch == {_quote(impl.arch)} and "
                       f"$host_os_name == {_quote(impl.os_name)})")
    query = "(" + " or ".join(clauses) + ")"
    if require_up:
        query += " and $host_up == true"
    return query


class Scheduler:
    """Base class: substrate access + the negotiate/enact wrapper."""

    #: subclass knob: how many times the wrapper recomputes schedules
    sched_try_limit = 3
    #: subclass knob: how many times each schedule is offered to the Enactor
    enact_try_limit = 2

    def __init__(self, collection: Collection, enactor: Enactor,
                 transport: Transport,
                 location: Optional[NetLocation] = None,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "", viable_cache: bool = True):
        self.collection = collection
        self.enactor = enactor
        self.transport = transport
        self.location = location
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.name = name or type(self).__name__
        self.collection_queries = 0
        #: incremental viable-hosts cache (keyed by query text, validated
        #: against the Collection's data_version token); disable to pin
        #: the paper's uncached lookup-economy baseline
        self.viable_cache = viable_cache
        self._viable_cache: dict = {}
        self.viable_cache_hits = 0
        self.viable_cache_misses = 0

    @property
    def spans(self) -> SpanTracer:
        return self.transport.spans

    # -- substrate access --------------------------------------------------
    def query_collection(self, query: str) -> List[CollectionRecord]:
        """Query the Collection through the transport (charged latency)."""
        self.collection_queries += 1
        with self.spans.span_if_active("collection.query", step="2") as sp:
            if self.collection.location is not None:
                results = self.transport.invoke(
                    self.location, self.collection.location,
                    self.collection.query, query, label="QueryCollection",
                    idempotent=True)
            else:
                results = self.collection.query(query)
            sp.set_attribute("results", len(results))
        return results

    def viable_hosts(self, class_obj: ClassObject,
                     extra_query: str = "") -> List[CollectionRecord]:
        """Hosts able to run some implementation of ``class_obj``.

        Results are cached per query text and revalidated against the
        Collection's ``data_version`` token, so repeated lookups between
        Collection mutations cost nothing — any record update, membership
        change, health transition, or federation-shard outage rolls the
        token and forces a fresh query.  Records the HealthMonitor marked
        DOWN are dropped here as well as at the Collection — a
        belt-and-braces filter for results that arrive through a stale
        federation query cache."""
        query = implementation_query(class_obj.get_implementations())
        if extra_query:
            query = f"({query}) and ({extra_query})"
        token = None
        if self.viable_cache:
            version_of = getattr(self.collection, "data_version", None)
            token = version_of() if version_of is not None else None
            if token is not None:
                entry = self._viable_cache.get(query)
                if entry is not None and entry[0] == token:
                    self.viable_cache_hits += 1
                    return list(entry[1])
        results = [r for r in self.query_collection(query)
                   if r.get("host_health") != "down"]
        if token is not None:
            self._viable_cache[query] = (token, results)
            self.viable_cache_misses += 1
            return list(results)
        return results

    @staticmethod
    def compatible_vaults_of(record: CollectionRecord) -> List[LOID]:
        """Extract the host's compatible-vault list from its Collection
        record ("extract list of compatible vaults from H", Fig. 7)."""
        raw = record.get("compatible_vaults", [])
        if not isinstance(raw, list):
            raw = [raw]
        vaults: List[LOID] = []
        for item in raw:
            try:
                vaults.append(LOID.parse(str(item)))
            except InvalidLOIDError:
                continue
        return vaults

    @staticmethod
    def host_loid_of(record: CollectionRecord) -> LOID:
        return record.member

    @staticmethod
    def best_implementation_for(class_obj: ClassObject,
                                record: CollectionRecord
                                ) -> Optional[Implementation]:
        """The fastest of the class's implementations that matches the
        host described by ``record`` (section 3.3 future work: "this
        mapping process may also select from among the available
        implementations")."""
        arch = str(record.get("host_arch", ""))
        os_name = str(record.get("host_os_name", ""))
        best: Optional[Implementation] = None
        for impl in class_obj.get_implementations():
            if impl.matches(arch, os_name):
                if best is None or impl.relative_speed > best.relative_speed:
                    best = impl
        return best

    # -- the policy ------------------------------------------------------------
    def compute_schedule(self, requests: Sequence[ObjectClassRequest]
                         ) -> ScheduleRequestList:
        """Map object instances to resources.  Subclasses implement this."""
        raise NotImplementedError

    # -- the wrapper loop (generalized Fig. 9) -----------------------------------
    def run(self, requests: Sequence[ObjectClassRequest],
            reservation_duration: float = 3600.0,
            rollback_on_failure: bool = True) -> SchedulingOutcome:
        """Compute schedules, negotiate reservations, and enact.

        Mirrors the IRS wrapper (Fig. 9): up to ``sched_try_limit``
        recomputations, each offered to the Enactor up to
        ``enact_try_limit`` times.
        """
        start = self.transport.sim.now
        queries_before = self.collection_queries
        metrics = self.transport.metrics
        outcome = SchedulingOutcome(ok=False)
        # the root of one placement trace: every protocol step below
        # (query, compute, negotiate, reserve, enact) parents under it
        with self.spans.span(
                "placement", scheduler=self.name,
                count=sum(r.count for r in requests)) as root:
            for s_try in range(self.sched_try_limit):
                outcome.schedule_tries = s_try + 1
                try:
                    with self.spans.span_if_active("scheduler.compute",
                                                   step="2-3",
                                                   attempt=s_try):
                        request_list = self.compute_schedule(requests)
                except SchedulingError as exc:
                    outcome.detail = f"schedule computation failed: {exc}"
                    continue
                for _e_try in range(self.enact_try_limit):
                    outcome.enact_tries += 1
                    feedback = self.enactor.make_reservations(
                        request_list, duration=reservation_duration)
                    outcome.feedback = feedback
                    if not feedback.ok:
                        outcome.detail = feedback.failure_detail
                        continue
                    result = self.enactor.enact_schedule(
                        feedback, rollback_on_failure=rollback_on_failure)
                    outcome.enact_result = result
                    if result.ok:
                        outcome.ok = True
                        outcome.created = result.created
                        outcome.collection_queries = (
                            self.collection_queries - queries_before)
                        outcome.elapsed = self.transport.sim.now - start
                        root.set_attribute("ok", True)
                        metrics.count("placement_requests_total",
                                      ok="true")
                        metrics.observe("placement_seconds",
                                        outcome.elapsed, ok="true")
                        return outcome
                    outcome.detail = result.detail
            root.set_attribute("ok", False)
            root.set_status("error")
            metrics.count("placement_requests_total", ok="false")
            metrics.observe("placement_seconds",
                            self.transport.sim.now - start, ok="false")
        outcome.collection_queries = self.collection_queries - queries_before
        outcome.elapsed = self.transport.sim.now - start
        return outcome
