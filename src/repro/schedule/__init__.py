"""The Schedule data structure (paper Fig. 5)."""

from .mapping import ScheduleMapping
from .schedule import (
    FailureKind,
    MasterSchedule,
    ScheduleFeedback,
    ScheduleRequestList,
    VariantSchedule,
)

__all__ = [
    "ScheduleMapping", "MasterSchedule", "VariantSchedule",
    "ScheduleRequestList", "ScheduleFeedback", "FailureKind",
]
