"""The Schedule data structure (paper Fig. 5) and Enactor data types.

"Each Schedule has at least one Master Schedule, and each Master Schedule
may have a list of Variant Schedules associated with it. ... Each entry in
the variant schedule is a single-object mapping, and replaces one entry in
the master schedule. ... Our data structure includes a bitmap field (one bit
per object mapping) for each variant schedule which allows the Enactor to
efficiently select the next variant schedule to try."

The three Enactor-facing types (section 3.3):

* ``LegionScheduleList`` — a single schedule (master or variant), here the
  resolved entry list a :class:`MasterSchedule`/:class:`VariantSchedule`
  produces;
* ``LegionScheduleRequestList`` — the whole Fig. 5 structure:
  :class:`ScheduleRequestList`;
* ``LegionScheduleFeedback`` — :class:`ScheduleFeedback`, returned by the
  Enactor with the original request plus success information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import MalformedScheduleError
from .mapping import ScheduleMapping

__all__ = [
    "MasterSchedule",
    "VariantSchedule",
    "ScheduleRequestList",
    "ScheduleFeedback",
    "FailureKind",
]


class FailureKind:
    """Coarse Enactor failure codes: "the Enactor may ... report whether the
    failure was due to an inability to obtain resources, a malformed
    schedule, or other failure."  """

    RESOURCES = "unable to obtain resources"
    MALFORMED = "malformed schedule"
    OTHER = "other failure"
    NONE = ""


class VariantSchedule:
    """A sparse overlay on a master schedule.

    ``replacements`` maps master entry index -> replacement mapping.  The
    bitmap has bit *i* set iff entry *i* is replaced.
    """

    def __init__(self, replacements: Dict[int, ScheduleMapping],
                 label: str = ""):
        if not replacements:
            raise MalformedScheduleError(
                "a variant schedule must replace at least one entry")
        for idx in replacements:
            if idx < 0:
                raise MalformedScheduleError(
                    f"negative entry index {idx} in variant")
        self.replacements = dict(replacements)
        self.label = label

    @property
    def bitmap(self) -> int:
        """Bit *i* set iff this variant replaces master entry *i*."""
        bits = 0
        for idx in self.replacements:
            bits |= 1 << idx
        return bits

    def covers(self, failed_indices: Sequence[int]) -> bool:
        """True when this variant replaces every failed entry.

        This is the Enactor's bitmap selection test: a variant is a
        candidate "next schedule to try" only if its bitmap covers the set
        of failed mappings.
        """
        need = 0
        for idx in failed_indices:
            need |= 1 << idx
        return (self.bitmap & need) == need

    def __len__(self) -> int:
        return len(self.replacements)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<VariantSchedule {self.label or hex(self.bitmap)} "
                f"replaces {sorted(self.replacements)}>")


class MasterSchedule:
    """An ordered list of mappings plus its variant list.

    ``required_k`` implements the future-work "k out of n" scheduling
    (section 3.3): when set, the Enactor deems reservation successful once
    any ``required_k`` of the entries hold reservations, cancelling the
    rest.  ``None`` (the default) requires every entry.
    """

    def __init__(self, entries: Sequence[ScheduleMapping],
                 variants: Optional[Sequence[VariantSchedule]] = None,
                 required_k: Optional[int] = None,
                 label: str = ""):
        self.entries: List[ScheduleMapping] = list(entries)
        if not self.entries:
            raise MalformedScheduleError("a master schedule must contain "
                                         "at least one mapping")
        self.variants: List[VariantSchedule] = list(variants or [])
        if required_k is not None and not (
                1 <= required_k <= len(self.entries)):
            raise MalformedScheduleError(
                f"required_k={required_k} out of range for "
                f"{len(self.entries)} entries")
        self.required_k = required_k
        self.label = label
        self._validate_variants()

    def _validate_variants(self) -> None:
        n = len(self.entries)
        for variant in self.variants:
            for idx in variant.replacements:
                if idx >= n:
                    raise MalformedScheduleError(
                        f"variant replaces entry {idx} but master has "
                        f"only {n} entries")

    def add_variant(self, variant: VariantSchedule) -> None:
        for idx in variant.replacements:
            if idx >= len(self.entries):
                raise MalformedScheduleError(
                    f"variant replaces entry {idx} but master has only "
                    f"{len(self.entries)} entries")
        self.variants.append(variant)

    def resolve(self, variant: Optional[VariantSchedule] = None
                ) -> List[ScheduleMapping]:
        """The effective entry list with a variant's replacements applied."""
        if variant is None:
            return list(self.entries)
        out = list(self.entries)
        for idx, mapping in variant.replacements.items():
            out[idx] = mapping
        return out

    def select_variant(self, failed_indices: Sequence[int],
                       exclude: Sequence[VariantSchedule] = ()
                       ) -> Optional[VariantSchedule]:
        """Bitmap-driven choice of the next variant to try.

        Returns the first unexcluded variant covering all failed entries,
        preferring the one that replaces the *fewest* entries (minimal
        disturbance — this is what avoids reservation thrashing).
        """
        candidates = [v for v in self.variants
                      if v not in exclude and v.covers(failed_indices)]
        if not candidates:
            return None
        return min(candidates, key=len)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<MasterSchedule {self.label!r} entries={len(self.entries)} "
                f"variants={len(self.variants)}>")


class ScheduleRequestList:
    """The full Fig. 5 structure: a list of master schedules (each with its
    variants), tried by the Enactor in order."""

    def __init__(self, masters: Sequence[MasterSchedule], label: str = ""):
        self.masters: List[MasterSchedule] = list(masters)
        if not self.masters:
            raise MalformedScheduleError(
                "a schedule request needs at least one master schedule")
        self.label = label

    def __len__(self) -> int:
        return len(self.masters)

    def __iter__(self):
        return iter(self.masters)

    def total_mappings(self) -> int:
        return sum(len(m) for m in self.masters)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ScheduleRequestList masters={len(self.masters)}>"


@dataclass
class ScheduleFeedback:
    """LegionScheduleFeedback: the original request plus what happened."""

    request: ScheduleRequestList
    ok: bool
    #: index of the master schedule that succeeded (if any)
    master_index: Optional[int] = None
    #: the variant that was applied, or None if the master itself succeeded
    variant: Optional[VariantSchedule] = None
    #: the effective, reserved entry list (for k-of-n, the k winners)
    reserved_entries: List[ScheduleMapping] = field(default_factory=list)
    failure_kind: str = FailureKind.NONE
    failure_detail: str = ""
    #: per-entry failure messages from the last attempt, index -> message
    entry_errors: Dict[int, str] = field(default_factory=dict)
    #: opaque handle for enact/cancel calls against this reservation set
    reservation_handle: Optional[object] = None

    @property
    def schedule(self) -> Optional[MasterSchedule]:
        if self.master_index is None:
            return None
        return self.request.masters[self.master_index]
