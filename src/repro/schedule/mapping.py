"""Schedule mappings: (Class LOID -> (Host LOID x Vault LOID)).

"Both master and variant schedules contain a list of mappings, with each
mapping having the type (Class LOID -> (Host LOID x Vault LOID)).  Each
mapping indicates that an instance of the class should be started on the
indicated (Host, Vault) pair." (paper section 3.3)

The paper adds: "In the future, this mapping process may also select from
among the available implementations of an object as well."  That future
work is implemented via the optional :attr:`ScheduleMapping.implementation`
field — a Scheduler may pin the binary to run, and the Class validates and
honours the choice at instantiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..naming.loid import LOID
from ..objects.class_object import Implementation

__all__ = ["ScheduleMapping"]


@dataclass(frozen=True)
class ScheduleMapping:
    """One object-instance placement decision."""

    class_loid: LOID
    host_loid: LOID
    vault_loid: LOID
    #: optional implementation selection (section 3.3 future work)
    implementation: Optional[Implementation] = None
    #: gang size: start this many instances with ONE reservation and ONE
    #: multi-object StartObject call ("The StartObject function can create
    #: one or more objects; this is important to support efficient object
    #: creation for multiprocessor systems", section 3.1)
    gang: int = 1

    def __post_init__(self) -> None:
        if self.gang < 1:
            raise ValueError("gang size must be >= 1")

    def __str__(self) -> str:
        impl = (f" [{self.implementation.arch}/"
                f"{self.implementation.os_name}]"
                if self.implementation else "")
        gang = f" x{self.gang}" if self.gang > 1 else ""
        return (f"{self.class_loid} -> ({self.host_loid}, "
                f"{self.vault_loid}){impl}{gang}")

    def same_target(self, other: "ScheduleMapping") -> bool:
        """True when both mappings name the same (Host, Vault) pair.

        Used by the Enactor's anti-thrashing logic: a variant entry with the
        same target as the master entry it replaces must not cause a
        cancel-and-remake of the same reservation.
        """
        return (self.host_loid == other.host_loid
                and self.vault_loid == other.vault_loid)
