"""Shared metric helpers for the experiment suite."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..metasystem import Metasystem
from ..scheduler.base import SchedulingOutcome

__all__ = [
    "success_rate",
    "mean_or_nan",
    "placement_spread",
    "host_load_imbalance",
]


def success_rate(outcomes: Sequence[SchedulingOutcome]) -> float:
    if not outcomes:
        return float("nan")
    return sum(1 for o in outcomes if o.ok) / len(outcomes)


def mean_or_nan(values: Sequence[float]) -> float:
    vals = [v for v in values if v == v]
    return float(np.mean(vals)) if vals else float("nan")


def placement_spread(outcome: SchedulingOutcome) -> int:
    """Number of distinct hosts a successful placement used."""
    if not outcome.ok or outcome.feedback is None:
        return 0
    return len({m.host_loid for m in outcome.feedback.reserved_entries})


def host_load_imbalance(meta: Metasystem) -> float:
    """Coefficient of variation of current host load averages."""
    loads = np.array([h.machine.load_average for h in meta.hosts])
    if loads.size == 0 or loads.mean() == 0:
        return 0.0
    return float(loads.std() / loads.mean())
