"""Experiment harness: table rendering and run management.

Every benchmark target in ``benchmarks/`` builds rows with
:class:`ExperimentTable` and prints them, so experiment output is uniform
and EXPERIMENTS.md entries can be regenerated verbatim.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

__all__ = ["ExperimentTable", "Experiment", "fmt"]


def fmt(value: Any, precision: int = 3) -> str:
    """Render one cell value compactly."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (0 < abs(value) < 0.001):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


class ExperimentTable:
    """An aligned, titled results table."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add(self, *values: Any, **named: Any) -> None:
        """Add one row, positionally or by column name."""
        if values and named:
            raise ValueError("pass either positional or named cells")
        if named:
            values = tuple(named.get(c, "") for c in self.columns)
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append([fmt(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(c.ljust(w)
                                for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w)
                                    for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self, stream=None) -> None:
        print(self.render(), file=stream or sys.stdout)
        print(file=stream or sys.stdout)

    def as_dicts(self) -> List[Dict[str, str]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


@dataclass
class Experiment:
    """Declarative wrapper tying an experiment id to its runner."""

    exp_id: str
    paper_artifact: str
    runner: Callable[[], ExperimentTable]
    notes: str = ""

    def run(self, print_table: bool = True) -> ExperimentTable:
        t0 = time.perf_counter()
        table = self.runner()
        elapsed = time.perf_counter() - t0
        if print_table:
            print(f"[{self.exp_id}] {self.paper_artifact} "
                  f"(wall {elapsed:.2f}s)")
            table.print()
        return table
