"""Benchmark-harness utilities: experiment tables and shared metrics."""

from .harness import Experiment, ExperimentTable, fmt
from .sequence import protocol_trace, render_sequence
from .metrics import (
    host_load_imbalance,
    mean_or_nan,
    placement_spread,
    success_rate,
)
from .scale import (
    QueryEngineBench,
    ScaleDatapoint,
    build_report,
    check_report,
    run_placement_scale,
    run_query_engines,
)

__all__ = [
    "Experiment", "ExperimentTable", "fmt",
    "render_sequence", "protocol_trace",
    "success_rate", "mean_or_nan", "placement_spread",
    "host_load_imbalance",
    "ScaleDatapoint", "QueryEngineBench",
    "run_placement_scale", "run_query_engines",
    "build_report", "check_report",
]
