"""The scale campaign: the ``BENCH_scale.json`` speed ledger.

Legion was "intended to connect many thousands, perhaps millions, of
hosts"; this harness measures how fast the *simulator itself* runs as the
testbed grows, so performance work on the hot paths (compiled query
plans, the Scheduler's viable-hosts cache, the kernel dispatch loop) is
pinned by a committed ledger instead of anecdotes.

Two measurements feed the ledger:

* **placement scale** — for each system size, a seeded testbed runs a
  fixed sequence of placement waves; the datapoint records both the
  *deterministic* outcome (placements, instances, virtual seconds,
  kernel events, messages, Collection queries, viable-cache hits) and
  the *machine-dependent* speed (wall seconds, events/sec);
* **query engines** — the E19a selective query evaluated over one large
  member set by all three engines: the tree-walking evaluator, the
  compiled closure plan, and the inverted-index Collection.

The split matters for CI: the ``scale-smoke`` job regenerates a small
profile and fails if any *deterministic* field drifted from the
committed datapoint (the ledger is stale — someone changed behaviour
without regenerating) or if events/sec fell below ``min_ratio`` times
the committed speed (a real performance regression, with a generous
tolerance for machine variance).  All wall-clock numbers come from the
monotonic :func:`time.perf_counter`.

Regenerate the committed ledger with::

   PYTHONPATH=src python -m repro.tools.cli scale --out BENCH_scale.json
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence

from ..collection.collection import Collection
from ..collection.indexing import IndexedCollection
from ..collection.query.compile import compile_query
from ..collection.query.evaluate import QueryFunctions, matches
from ..collection.query.parser import parse
from ..naming.loid import LOID
from .harness import ExperimentTable

__all__ = [
    "SCALE_QUERY",
    "DEFAULT_SIZES",
    "DEFAULT_MIN_RATIO",
    "ScaleDatapoint",
    "QueryEngineBench",
    "fill_hosts",
    "run_placement_scale",
    "run_query_engines",
    "build_report",
    "check_report",
    "placement_table",
    "engine_table",
]

#: the E19a "realistic big-system query": selective (platform + site),
#: every clause on the compiled fast path
SCALE_QUERY = ('$host_arch == "sparc" and $site == "site4" '
               'and $host_up == true and $host_load < 2')

#: committed-ledger system sizes (total hosts)
DEFAULT_SIZES = (64, 256, 1024)

#: regenerated events/sec may drop to this fraction of the committed
#: value before the smoke job fails — generous, because CI machines vary
DEFAULT_MIN_RATIO = 0.3

#: fields of a datapoint that must reproduce bit-for-bit on any machine
DETERMINISTIC_FIELDS = (
    "hosts", "waves", "per_wave", "seed", "scheduler", "placements",
    "instances", "virtual_s", "events", "messages", "collection_queries",
    "viable_cache_hits",
)


@dataclass
class ScaleDatapoint:
    """One system size's ledger entry (see DETERMINISTIC_FIELDS)."""

    hosts: int
    waves: int
    per_wave: int
    seed: int
    scheduler: str
    placements: int
    instances: int
    virtual_s: float
    events: int
    messages: int
    collection_queries: int
    viable_cache_hits: int
    #: machine-dependent: monotonic wall seconds for the wave loop
    wall_s: float
    #: machine-dependent: kernel events dispatched per wall second
    events_per_s: float


@dataclass
class QueryEngineBench:
    """The E19a query evaluated by all three engines (us/query)."""

    members: int
    matching: int
    reps: int
    treewalk_us: float
    compiled_us: float
    indexed_us: float
    compiled_speedup: float
    indexed_speedup: float


def fill_hosts(coll: Collection, n: int) -> None:
    """Populate a Collection with the E19a synthetic host records."""
    coll.require_auth = False
    archs = [("sparc", "SunOS"), ("mips", "IRIX"), ("x86", "Linux"),
             ("alpha", "OSF1")]
    for i in range(n):
        arch, os_name = archs[i % 4]
        coll.join(LOID(("d", "host", f"h{i}")), {
            "host_arch": arch, "host_os_name": os_name,
            "site": f"site{i % 64}",
            "host_up": True, "host_load": float(i % 4),
        })


# -- placement scale ---------------------------------------------------------
def run_placement_scale(sizes: Sequence[int] = DEFAULT_SIZES,
                        waves: int = 4, per_wave: int = 6,
                        seed: int = 0, scheduler: str = "irs",
                        wave_interval: float = 60.0,
                        ) -> List[ScaleDatapoint]:
    """Run the seeded wave workload at each system size.

    Sizes must be divisible by 4 (the testbed uses four domains).
    """
    from ..scheduler.base import ObjectClassRequest
    from ..workload.testbed import (
        TestbedSpec,
        build_testbed,
        implementations_for_all_platforms,
    )

    points: List[ScaleDatapoint] = []
    for n in sizes:
        if n % 4:
            raise ValueError(f"size {n} not divisible by 4 domains")
        meta = build_testbed(TestbedSpec(
            seed=seed, n_domains=4, hosts_per_domain=n // 4,
            platform_mix=3, background_load_mean=0.5))
        app = meta.create_class("scale-app",
                                implementations_for_all_platforms(),
                                work_units=100.0)
        sched = meta.make_scheduler(scheduler)
        t0 = perf_counter()
        v0 = meta.now
        e0 = meta.sim.events_processed
        m0 = meta.transport.messages_sent
        placements = instances = 0
        for _wave in range(waves):
            # each wave is a burst of two back-to-back requests (two
            # users submitting in the same instant): the second request
            # exercises the Scheduler's viable-hosts cache, while the
            # advance between waves refreshes host attributes and so
            # forces revalidation
            for _burst in range(2):
                outcome = sched.run(
                    [ObjectClassRequest(app, count=per_wave)])
                if outcome.ok:
                    placements += 1
                    instances += len(outcome.created)
            meta.advance(wave_interval)
        wall = perf_counter() - t0
        events = meta.sim.events_processed - e0
        points.append(ScaleDatapoint(
            hosts=n, waves=waves, per_wave=per_wave, seed=seed,
            scheduler=scheduler, placements=placements,
            instances=instances, virtual_s=meta.now - v0,
            events=events,
            messages=meta.transport.messages_sent - m0,
            collection_queries=sched.collection_queries,
            viable_cache_hits=sched.viable_cache_hits,
            wall_s=wall,
            events_per_s=(events / wall if wall > 0 else 0.0)))
    return points


# -- query engines -----------------------------------------------------------
def run_query_engines(members: int = 4096,
                      reps: int = 20) -> QueryEngineBench:
    """Time tree-walk vs compiled vs indexed on the E19a query.

    The tree-walk and compiled loops evaluate the identical attribute
    mappings, so the ratio isolates the engine; the indexed row times the
    full ``IndexedCollection.query`` (candidate narrowing + compiled
    residual evaluation).
    """
    scan = Collection(LOID(("d", "svc", "scale-scan")))
    idx = IndexedCollection(LOID(("d", "svc", "scale-idx")))
    fill_hosts(scan, members)
    fill_hosts(idx, members)
    matching = len(scan.query(SCALE_QUERY))
    assert matching == len(idx.query(SCALE_QUERY))

    ast = parse(SCALE_QUERY)
    fns = QueryFunctions()
    plan = compile_query(ast, fns)
    records = [scan.record_of(m).attributes for m in scan.members()]

    def timed(once, n=reps) -> float:
        once()  # warm caches outside the timed region
        t0 = perf_counter()
        for _ in range(n):
            once()
        return (perf_counter() - t0) / n * 1e6

    treewalk_us = timed(
        lambda: [r for r in records if matches(ast, r, fns)])
    plan_matches = plan.matches
    compiled_us = timed(
        lambda: [r for r in records if plan_matches(r)])
    indexed_us = timed(lambda: idx.query(SCALE_QUERY))
    return QueryEngineBench(
        members=members, matching=matching, reps=reps,
        treewalk_us=treewalk_us, compiled_us=compiled_us,
        indexed_us=indexed_us,
        compiled_speedup=(treewalk_us / compiled_us
                          if compiled_us > 0 else float("inf")),
        indexed_speedup=(treewalk_us / indexed_us
                         if indexed_us > 0 else float("inf")))


# -- the ledger --------------------------------------------------------------
def build_report(sizes: Sequence[int] = DEFAULT_SIZES,
                 waves: int = 4, per_wave: int = 6, seed: int = 0,
                 scheduler: str = "irs", members: int = 4096,
                 reps: int = 20) -> Dict[str, Any]:
    """Assemble the full BENCH_scale.json document."""
    points = run_placement_scale(sizes, waves=waves, per_wave=per_wave,
                                 seed=seed, scheduler=scheduler)
    engines = run_query_engines(members=members, reps=reps)
    return {
        "schema": 1,
        "min_ratio": DEFAULT_MIN_RATIO,
        "query": SCALE_QUERY,
        "sizes": [asdict(p) for p in points],
        "query_engines": asdict(engines),
    }


def report_to_json(report: Dict[str, Any]) -> str:
    return json.dumps(report, indent=2, sort_keys=True)


def check_report(committed: Dict[str, Any], fresh: Dict[str, Any],
                 min_ratio: Optional[float] = None) -> List[str]:
    """Compare a fresh run against the committed ledger.

    Returns a list of human-readable problems (empty = pass):

    * a fresh datapoint whose identity (hosts/waves/per_wave/seed/
      scheduler) is absent from the committed ledger, or any
      deterministic field that differs → the committed ledger is stale;
    * fresh events/sec below ``min_ratio`` x committed → regression;
    * the compiled engine slower than the acceptance floor (2x over
      tree-walk at >= 4096 members, 1.2x on smaller smoke profiles).
    """
    if min_ratio is None:
        min_ratio = float(committed.get("min_ratio", DEFAULT_MIN_RATIO))
    problems: List[str] = []

    def identity(p: Dict[str, Any]) -> tuple:
        return (p["hosts"], p["waves"], p["per_wave"], p["seed"],
                p["scheduler"])

    committed_points = {identity(p): p for p in committed.get("sizes", [])}
    for point in fresh.get("sizes", []):
        base = committed_points.get(identity(point))
        if base is None:
            problems.append(
                f"no committed datapoint for {point['hosts']} hosts "
                f"(waves={point['waves']}, per_wave={point['per_wave']}, "
                f"seed={point['seed']}, "
                f"scheduler={point['scheduler']}) — regenerate "
                f"BENCH_scale.json")
            continue
        for key in DETERMINISTIC_FIELDS:
            if base[key] != point[key]:
                problems.append(
                    f"{point['hosts']} hosts: committed {key}="
                    f"{base[key]!r} but this run produced "
                    f"{point[key]!r} — the ledger is stale, regenerate "
                    f"BENCH_scale.json")
        base_speed = float(base.get("events_per_s", 0.0))
        if base_speed > 0 and \
                point["events_per_s"] < min_ratio * base_speed:
            problems.append(
                f"{point['hosts']} hosts: events/sec regressed to "
                f"{point['events_per_s']:.0f} "
                f"(committed {base_speed:.0f}, tolerance floor "
                f"{min_ratio * base_speed:.0f})")

    engines = fresh.get("query_engines")
    if engines:
        floor = 2.0 if engines["members"] >= 4096 else 1.2
        if engines["compiled_speedup"] < floor:
            problems.append(
                f"compiled query plan only "
                f"{engines['compiled_speedup']:.2f}x over tree-walk at "
                f"{engines['members']} members (floor {floor}x)")
    return problems


# -- rendering ---------------------------------------------------------------
def placement_table(points: Sequence[Dict[str, Any]]) -> ExperimentTable:
    table = ExperimentTable(
        "scale — placement waves vs system size",
        ["hosts", "placements", "instances", "virtual s", "events",
         "messages", "queries", "cache hits", "wall s", "events/s"])
    for p in points:
        table.add(p["hosts"], p["placements"], p["instances"],
                  p["virtual_s"], p["events"], p["messages"],
                  p["collection_queries"], p["viable_cache_hits"],
                  p["wall_s"], p["events_per_s"])
    return table


def engine_table(engines: Dict[str, Any]) -> ExperimentTable:
    table = ExperimentTable(
        f"scale — E19a query engines at {engines['members']} members "
        f"(wall us/query)",
        ["engine", "us/query", "speedup vs tree-walk"])
    table.add("tree-walk", engines["treewalk_us"], 1.0)
    table.add("compiled", engines["compiled_us"],
              engines["compiled_speedup"])
    table.add("indexed", engines["indexed_us"],
              engines["indexed_speedup"])
    return table
