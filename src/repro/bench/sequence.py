"""Render transport traces as ASCII sequence diagrams.

The Tracer already records every ``net/invoke`` with source, destination,
label, and round-trip time; :func:`render_sequence` turns a slice of those
records into the classic lifeline diagram — the Fig. 3 protocol, drawn
from an actual run:

.. code-block:: text

    scheduler        collection      dom0/ws1        dom0/ws2
        |--QueryCollection-->|            |               |
        |<-------0.8ms-------|            |               |
        |--make_reservation[0]----------->|               |
        |--make_reservation[1]----------------------------->|
        ...

Used by ``legion-sim run --trace`` and handy in notebooks/debugging.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..sim.tracing import TraceRecord, Tracer

__all__ = ["render_sequence", "protocol_trace"]


def _short(endpoint: str) -> str:
    """Compact an endpoint name ('None' becomes 'client')."""
    if endpoint in ("None", "", None):
        return "client"
    return str(endpoint)


def render_sequence(records: Iterable[TraceRecord],
                    max_label: int = 28,
                    column_width: int = 16) -> str:
    """Render ``net/invoke`` trace records as a sequence diagram."""
    invokes = [r for r in records
               if r.category == "net" and r.event == "invoke"]
    if not invokes:
        return "(no invocations recorded)"

    # lifelines, in order of first appearance
    parties: List[str] = []
    for rec in invokes:
        for endpoint in (_short(rec.details.get("src")),
                         _short(rec.details.get("dst"))):
            if endpoint not in parties:
                parties.append(endpoint)
    width = max(column_width,
                max(len(p) for p in parties) + 2)
    col = {p: i for i, p in enumerate(parties)}

    def lifeline_row(fill: str = " ", marker: str = "|") -> List[str]:
        row = [fill] * (width * len(parties))
        for p, i in col.items():
            row[i * width + width // 2] = marker
        return row

    lines: List[str] = []
    # header
    header = ""
    for p in parties:
        header += p.center(width)
    lines.append(header.rstrip())

    for rec in invokes:
        src = _short(rec.details.get("src"))
        dst = _short(rec.details.get("dst"))
        label = str(rec.details.get("label", ""))[:max_label]
        rtt = rec.details.get("rtt")
        note = f"{label} ({float(rtt) * 1e3:.1f}ms)" if rtt is not None \
            else label
        a, b = col[src], col[dst]
        row = lifeline_row()
        left, right = min(a, b), max(a, b)
        start = left * width + width // 2
        end = right * width + width // 2
        if a == b:
            # self-call
            row[start] = "|"
            text = " " + note
            for j, ch in enumerate(text):
                pos = start + 1 + j
                if pos < len(row):
                    row[pos] = ch
        else:
            for pos in range(start + 1, end):
                row[pos] = "-"
            if a < b:
                row[end - 1] = ">"
            else:
                row[start + 1] = "<"
            # centred label, truncated (with ellipsis) to the arrow span
            avail = max(end - start - 3, 0)
            display = note
            if len(display) > avail:
                display = (note[: max(avail - 1, 0)] + "~") if avail > 1 \
                    else ""
            first = start + 1 + max((avail - len(display)) // 2, 0)
            if a >= b:
                first += 1  # keep the '<' arrowhead visible
            for j, ch in enumerate(display):
                pos = first + j
                if start < pos < end - 1:
                    row[pos] = ch
        lines.append("".join(row).rstrip())
        lines.append("".join(lifeline_row()).rstrip())
    return "\n".join(lines)


def protocol_trace(tracer: Tracer, since: float = 0.0,
                   limit: Optional[int] = None) -> str:
    """Sequence diagram of a tracer's invocations at/after ``since``."""
    records = [r for r in tracer.select("net", "invoke")
               if r.time >= since]
    if limit is not None:
        records = records[:limit]
    return render_sequence(records)
