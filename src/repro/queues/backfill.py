"""EASY-backfill queue with advance reservations (the Maui family).

Two features matter to the Legion RMI:

* **backfill** — jobs behind the queue head may start early if (by their
  runtime *estimates*) they will not delay the head job's earliest start;
* **advance reservations** — external agents (a Batch Queue Host) can
  reserve ``nodes`` over ``[start, start+duration)``; the scheduler plans
  around these windows, which is what lets a reservation-aware Host "pass
  the job of managing reservations through to the queuing system"
  (paper section 3.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ReservationDeniedError
from .base import QueueJob, QueueSystem

__all__ = ["BackfillQueue", "AdvanceReservation"]


@dataclass(frozen=True)
class AdvanceReservation:
    """A block of nodes promised to an external agent for a time window."""

    res_id: int
    nodes: int
    start: float
    end: float


class BackfillQueue(QueueSystem):
    """EASY backfill + advance reservations."""

    supports_reservations = True

    _res_ids = itertools.count(1)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._reservations: Dict[int, AdvanceReservation] = {}
        self.backfilled_jobs = 0

    # -- advance reservations ------------------------------------------------
    def reserve(self, nodes: int, start: float,
                duration: float) -> AdvanceReservation:
        """Reserve ``nodes`` over ``[start, start+duration)`` or raise."""
        if nodes < 1 or nodes > self.total_nodes:
            raise ReservationDeniedError(
                f"{self.name}: cannot reserve {nodes} of "
                f"{self.total_nodes} nodes")
        if duration <= 0:
            raise ReservationDeniedError("non-positive duration")
        end = start + duration
        # nodes already promised in overlapping windows
        for t in self._boundaries(start, end):
            if self._reserved_at(t) + nodes > self.total_nodes:
                raise ReservationDeniedError(
                    f"{self.name}: {nodes} nodes not free at t={t}")
        res = AdvanceReservation(next(self._res_ids), nodes, start, end)
        self._reservations[res.res_id] = res
        return res

    def release(self, res: AdvanceReservation) -> None:
        self._reservations.pop(res.res_id, None)
        self._schedule_pass()

    def claim(self, res: AdvanceReservation, job: QueueJob) -> bool:
        """Run ``job`` immediately inside an active reservation window."""
        now = self.sim.now
        if res.res_id not in self._reservations:
            return False
        if not (res.start <= now < res.end) or job.nodes > res.nodes:
            return False
        if job.nodes > self.free_nodes:
            return False
        job.submitted_at = now
        self._start_job(job)
        # the claimed portion of the reservation is consumed
        self._reservations.pop(res.res_id, None)
        return True

    def _boundaries(self, start: float, end: float) -> List[float]:
        pts = {start}
        for r in self._reservations.values():
            if r.start < end and start < r.end:
                pts.add(max(r.start, start))
        return sorted(pts)

    def _reserved_at(self, t: float) -> int:
        return sum(r.nodes for r in self._reservations.values()
                   if r.start <= t < r.end)

    # -- scheduling ----------------------------------------------------------
    def _nodes_unreserved(self, t: float) -> int:
        """Nodes not promised to advance reservations at instant ``t``."""
        return self.total_nodes - self._reserved_at(t)

    def _can_start_now(self, job: QueueJob) -> bool:
        """Enough free nodes now, clear of reservation windows the job's
        *estimated* runtime would collide with."""
        if job.nodes > self.free_nodes:
            return False
        now = self.sim.now
        finish = now + self._estimate_of(job)
        # conservative: over the job's estimated span, running jobs' nodes +
        # this job's nodes must fit beside reserved nodes at window starts
        for r in self._reservations.values():
            if r.start < finish and now < r.end:
                # job overlaps reservation window: the job + reservation
                # must both fit
                if self._busy_nodes + job.nodes + r.nodes > self.total_nodes:
                    return False
        return True

    def _head_shadow(self) -> Tuple[float, int]:
        """EASY planning for the head job: (shadow start time, spare nodes).

        Shadow time is when, assuming running jobs end at their estimates,
        enough nodes free up for the head; spare nodes are those left over
        at that moment (backfill jobs using <= spare nodes may run past the
        shadow time).
        """
        head = self.queued[0]
        now = self.sim.now
        ends = sorted(
            (((j.started_at if j.started_at is not None else now))
             + self._estimate_of(j), j.nodes)
            for j in self.running.values())
        free = self.free_nodes
        if head.nodes <= free:
            return now, free - head.nodes
        for t, nodes in ends:
            free += nodes
            if head.nodes <= free:
                return t, free - head.nodes
        return float("inf"), 0

    def _schedule_pass(self) -> None:
        progress = True
        while progress:
            progress = False
            if not self.queued:
                return
            head = self.queued[0]
            if self._can_start_now(head):
                self._start_job(head)
                progress = True
                continue
            # EASY backfill over the remainder of the queue
            shadow, spare = self._head_shadow()
            now = self.sim.now
            for job in list(self.queued[1:]):
                if not self._can_start_now(job):
                    continue
                est_end = now + self._estimate_of(job)
                if est_end <= shadow or job.nodes <= spare:
                    self._start_job(job)
                    self.backfilled_jobs += 1
                    if job.nodes <= spare:
                        spare -= job.nodes
                    progress = True
                    break  # recompute shadow after any start
