"""Queue-management system simulators: FCFS (LoadLeveler/Codine family),
EASY backfill with advance reservations (Maui family), and cycle-scavenged
pools (Condor family)."""

from .backfill import AdvanceReservation, BackfillQueue
from .base import JobState, QueueJob, QueueSystem
from .condor import CondorPool
from .fcfs import FCFSQueue

__all__ = [
    "QueueSystem", "QueueJob", "JobState",
    "FCFSQueue", "BackfillQueue", "AdvanceReservation", "CondorPool",
]
