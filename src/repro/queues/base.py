"""Queue-management system substrate.

The paper's Batch Queue Hosts mediate between Legion and local queue systems
("We have Batch Queue Host implementations for Unix machines, LoadLeveler,
and Codine"; a Maui-style system "does support reservations").  We implement
the three behavioural families those systems represent:

* :class:`~repro.queues.fcfs.FCFSQueue` — run-in-order space sharing
  (LoadLeveler/Codine without backfill);
* :class:`~repro.queues.backfill.BackfillQueue` — EASY backfill with
  advance-reservation support (Maui);
* :class:`~repro.queues.condor.CondorPool` — cycle-scavenged workstations
  with owner-activity preemption (Condor).

All share the :class:`QueueSystem` interface used by
:class:`~repro.hosts.batch_host.BatchQueueHost`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import ResourceError
from ..sim.kernel import Simulator

__all__ = ["QueueJob", "JobState", "QueueSystem"]


class JobState:
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    VACATED = "vacated"   # preempted by owner activity; will be retried


@dataclass
class QueueJob:
    """A job submitted to a queue system.

    ``work`` is in abstract work units (1 unit = 1 second on a speed-1.0
    node); ``estimated_runtime`` is the user's runtime estimate in seconds,
    which backfill schedulers trust for planning (and which, realistically,
    may be wrong).
    """

    work: float
    nodes: int = 1
    memory_mb: float = 32.0
    estimated_runtime: Optional[float] = None
    name: str = ""
    on_complete: Optional[Callable[["QueueJob"], None]] = None

    job_id: int = field(default_factory=itertools.count().__next__)
    state: str = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    remaining_work: float = field(default=0.0)
    preemptions: int = 0

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError("work must be non-negative")
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        self.remaining_work = float(self.work)
        if not self.name:
            self.name = f"qjob{self.job_id}"

    @property
    def wait_time(self) -> float:
        if self.started_at is None:
            return float("nan")
        return self.started_at - self.submitted_at

    @property
    def turnaround(self) -> float:
        if self.finished_at is None:
            return float("nan")
        return self.finished_at - self.submitted_at


class QueueSystem:
    """Abstract queue-management system bound to a simulator.

    Subclasses implement :meth:`_schedule_pass`, called whenever the queue
    state changes (submission, completion, cancellation, node-state change).
    """

    #: whether the underlying system natively supports advance reservations
    supports_reservations = False

    def __init__(self, sim: Simulator, nodes: int, node_speed: float = 1.0,
                 name: str = "queue"):
        if nodes < 1:
            raise ResourceError("queue system needs at least one node")
        self.sim = sim
        self.name = name
        self.total_nodes = nodes
        self.node_speed = node_speed
        self.queued: List[QueueJob] = []
        self.running: Dict[int, QueueJob] = {}
        self.completed: List[QueueJob] = []
        self._busy_nodes = 0
        self._epoch = 0

    # -- public interface ---------------------------------------------------
    def submit(self, job: QueueJob) -> QueueJob:
        job.submitted_at = self.sim.now
        job.state = JobState.QUEUED
        self.queued.append(job)
        self._schedule_pass()
        return job

    def cancel(self, job: QueueJob) -> bool:
        if job.state == JobState.QUEUED and job in self.queued:
            self.queued.remove(job)
            job.state = JobState.CANCELLED
            return True
        if job.state == JobState.RUNNING:
            self._stop_job(job)
            job.state = JobState.CANCELLED
            self._schedule_pass()
            return True
        return False

    def status(self, job: QueueJob) -> str:
        return job.state

    @property
    def free_nodes(self) -> int:
        return self.total_nodes - self._busy_nodes

    @property
    def queue_length(self) -> int:
        return len(self.queued)

    def utilization_snapshot(self) -> float:
        return self._busy_nodes / self.total_nodes

    # -- machinery for subclasses ---------------------------------------------
    def _runtime_of(self, job: QueueJob) -> float:
        return job.remaining_work / self.node_speed

    def _estimate_of(self, job: QueueJob) -> float:
        if job.estimated_runtime is not None:
            return job.estimated_runtime
        return job.work / self.node_speed

    def _start_job(self, job: QueueJob) -> None:
        if job.nodes > self.free_nodes:
            raise ResourceError(
                f"{self.name}: cannot start {job.name}: needs {job.nodes} "
                f"nodes, {self.free_nodes} free")
        if job in self.queued:
            self.queued.remove(job)
        job.state = JobState.RUNNING
        job.started_at = self.sim.now
        self.running[job.job_id] = job
        self._busy_nodes += job.nodes
        epoch = self._epoch
        finish_in = self._runtime_of(job)
        self.sim.schedule(finish_in,
                          lambda: self._complete_job(job, epoch))

    def _stop_job(self, job: QueueJob) -> None:
        """Remove a running job (cancel/preempt), releasing its nodes."""
        if job.job_id in self.running:
            # progress accounting: work done since start
            started = (job.started_at if job.started_at is not None
                       else self.sim.now)
            elapsed = self.sim.now - started
            job.remaining_work = max(
                0.0, job.remaining_work - elapsed * self.node_speed)
            del self.running[job.job_id]
            self._busy_nodes -= job.nodes
            self._epoch += 1
            self._requeue_survivors()

    def _requeue_survivors(self) -> None:
        """Completion timers were epoch-invalidated; rearm for still-running
        jobs."""
        epoch = self._epoch
        for job in self.running.values():
            started = (job.started_at if job.started_at is not None
                       else self.sim.now)
            elapsed = self.sim.now - started
            left = max(0.0,
                       self._runtime_of(job) - elapsed)
            self.sim.schedule(left, lambda j=job: self._complete_job(j, epoch))

    def _complete_job(self, job: QueueJob, epoch: int) -> None:
        if epoch != self._epoch or job.job_id not in self.running:
            return
        del self.running[job.job_id]
        self._busy_nodes -= job.nodes
        job.state = JobState.DONE
        job.remaining_work = 0.0
        job.finished_at = self.sim.now
        self.completed.append(job)
        self._schedule_pass()
        if job.on_complete is not None:
            job.on_complete(job)

    def _schedule_pass(self) -> None:
        raise NotImplementedError
