"""Cycle-scavenging workstation pool (the Condor family).

Each workstation alternates between *owner-busy* and *idle* states (two-state
semi-Markov process with exponential holding times).  Guest jobs run only on
idle stations; when the owner returns the job is **vacated** — its progress
is checkpointed (remaining work preserved) and it re-enters the queue to be
matched to another idle station, exactly Condor's hunt for idle
workstations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from .base import JobState, QueueJob, QueueSystem

__all__ = ["CondorPool"]


class _Station:
    __slots__ = ("index", "owner_busy", "guest")

    def __init__(self, index: int):
        self.index = index
        self.owner_busy = False
        self.guest: Optional[QueueJob] = None


class CondorPool(QueueSystem):
    """Opportunistic pool with owner-activity preemption."""

    supports_reservations = False

    def __init__(self, sim: Simulator, nodes: int, rngs: RngRegistry,
                 node_speed: float = 1.0, name: str = "condor",
                 mean_idle: float = 1800.0, mean_busy: float = 900.0,
                 initially_busy_fraction: float = 0.3):
        super().__init__(sim, nodes, node_speed, name)
        self._rng = rngs.stream("condor", name)
        self.mean_idle = mean_idle
        self.mean_busy = mean_busy
        self.stations: List[_Station] = [_Station(i) for i in range(nodes)]
        self.vacations = 0
        self._job_station: Dict[int, _Station] = {}
        for st in self.stations:
            st.owner_busy = bool(self._rng.random()
                                 < initially_busy_fraction)
            self._schedule_owner_flip(st)

    # -- owner activity --------------------------------------------------------
    def _schedule_owner_flip(self, st: _Station) -> None:
        mean = self.mean_busy if st.owner_busy else self.mean_idle
        delay = float(self._rng.exponential(mean))
        self.sim.schedule(delay, lambda: self._owner_flip(st))

    def _owner_flip(self, st: _Station) -> None:
        st.owner_busy = not st.owner_busy
        if st.owner_busy and st.guest is not None:
            self._vacate(st)
        self._schedule_owner_flip(st)
        if not st.owner_busy:
            self._schedule_pass()

    def _vacate(self, st: _Station) -> None:
        job = st.guest
        st.guest = None
        if job is None:
            return
        self._job_station.pop(job.job_id, None)
        self._stop_job(job)  # checkpoints remaining work
        job.state = JobState.VACATED
        job.preemptions += 1
        self.vacations += 1
        self.queued.append(job)   # back of the queue, Condor-style retry
        self._schedule_pass()

    # -- matching ---------------------------------------------------------------
    def idle_station_count(self) -> int:
        return sum(1 for st in self.stations
                   if not st.owner_busy and st.guest is None)

    def _find_idle_station(self) -> Optional[_Station]:
        for st in self.stations:
            if not st.owner_busy and st.guest is None:
                return st
        return None

    def _schedule_pass(self) -> None:
        # match queued single-node jobs to idle stations, in queue order
        i = 0
        while i < len(self.queued):
            job = self.queued[i]
            if job.nodes != 1:
                # a scavenged pool only runs sequential guests
                i += 1
                continue
            st = self._find_idle_station()
            if st is None:
                return
            job.state = JobState.QUEUED
            self._start_job(job)       # removes from queue
            st.guest = job
            self._job_station[job.job_id] = st
            # do not advance i: queued list shrank

    def _complete_job(self, job: QueueJob, epoch: int) -> None:
        st = self._job_station.get(job.job_id)
        was_running = job.job_id in self.running
        super()._complete_job(job, epoch)
        if was_running and job.state == JobState.DONE and st is not None:
            st.guest = None
            self._job_station.pop(job.job_id, None)
            self._schedule_pass()
