"""First-come-first-served space-sharing queue (LoadLeveler/Codine family).

Jobs start strictly in submission order; a large job at the head blocks
everything behind it even when smaller jobs would fit — the inefficiency
that motivates backfill (see :mod:`repro.queues.backfill`).
"""

from __future__ import annotations

from .base import QueueSystem

__all__ = ["FCFSQueue"]


class FCFSQueue(QueueSystem):
    """Run jobs in arrival order as nodes permit."""

    supports_reservations = False

    def _schedule_pass(self) -> None:
        while self.queued and self.queued[0].nodes <= self.free_nodes:
            self._start_job(self.queued[0])
