"""Legion Object Identifiers (LOIDs).

Every Legion object has a location-independent identifier.  In the real
system a LOID is a variable-length binary identifier containing a domain
field, a class field, an instance field, and a public key.  We reproduce the
structural properties the RMI relies on:

* globally unique, location independent;
* carries its class lineage (an instance LOID embeds its class LOID);
* cheap equality/hash (used as dictionary keys throughout the RMI);
* printable and parseable (Collections store and return them).

The textual form is ``loid:<field>.<field>...`` where each field is a
non-empty token of ``[A-Za-z0-9_-]``.  By convention field 0 is the naming
domain, field 1 the object type tag (``class``, ``host``, ``vault``, ``obj``,
``svc``), and subsequent fields identify the object within its type.
"""

from __future__ import annotations

import itertools
import re
from typing import Iterable, Tuple

from ..errors import InvalidLOIDError

__all__ = ["LOID", "LOIDMinter"]

_FIELD_RE = re.compile(r"^[A-Za-z0-9_-]+$")
_PREFIX = "loid:"


class LOID:
    """An immutable, hashable Legion Object Identifier."""

    __slots__ = ("_fields", "_hash")

    def __init__(self, fields: Iterable[str]):
        fields = tuple(str(f) for f in fields)
        if not fields:
            raise InvalidLOIDError("LOID requires at least one field")
        for f in fields:
            if not _FIELD_RE.match(f):
                raise InvalidLOIDError(f"invalid LOID field {f!r}")
        self._fields = fields
        self._hash = hash(fields)

    # -- constructors --------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "LOID":
        """Parse the textual form produced by :meth:`__str__`."""
        if not isinstance(text, str) or not text.startswith(_PREFIX):
            raise InvalidLOIDError(f"LOID text must start with {_PREFIX!r}: "
                                   f"{text!r}")
        body = text[len(_PREFIX):]
        if not body:
            raise InvalidLOIDError("empty LOID body")
        return cls(body.split("."))

    # -- structure -----------------------------------------------------------
    @property
    def fields(self) -> Tuple[str, ...]:
        return self._fields

    @property
    def domain(self) -> str:
        """The naming-domain field (field 0)."""
        return self._fields[0]

    @property
    def type_tag(self) -> str:
        """The object-type field (field 1), or ``''`` for bare domain LOIDs."""
        return self._fields[1] if len(self._fields) > 1 else ""

    def child(self, *extra: str) -> "LOID":
        """A LOID extending this one — e.g. an instance under its class."""
        return LOID(self._fields + tuple(extra))

    def is_descendant_of(self, other: "LOID") -> bool:
        """True if ``other`` is a proper prefix of this LOID."""
        of = other._fields
        return (len(self._fields) > len(of)
                and self._fields[: len(of)] == of)

    def class_loid(self) -> "LOID":
        """For an instance LOID minted by :class:`LOIDMinter`, the class part.

        Instance LOIDs have the form ``<class fields...>.<serial>``; this
        strips the final serial field.
        """
        if len(self._fields) < 2:
            raise InvalidLOIDError(f"{self} has no class prefix")
        return LOID(self._fields[:-1])

    # -- protocol ------------------------------------------------------------
    def __str__(self) -> str:
        return _PREFIX + ".".join(self._fields)

    def __repr__(self) -> str:
        return f"LOID({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LOID) and self._fields == other._fields

    def __lt__(self, other: "LOID") -> bool:
        if not isinstance(other, LOID):
            return NotImplemented
        return self._fields < other._fields

    def __hash__(self) -> int:
        return self._hash


class LOIDMinter:
    """Mints unique LOIDs within one naming domain.

    The minter is the simulated analogue of LegionClass handing out
    identifiers; serials are per-prefix counters so identifiers are compact
    and deterministic.
    """

    def __init__(self, domain: str = "legion"):
        if not _FIELD_RE.match(domain):
            raise InvalidLOIDError(f"invalid domain {domain!r}")
        self.domain = domain
        self._counters = {}

    def _next(self, key: Tuple[str, ...]) -> int:
        counter = self._counters.get(key)
        if counter is None:
            counter = itertools.count()
            self._counters[key] = counter
        return next(counter)

    def mint(self, type_tag: str, name: str = "") -> LOID:
        """Mint a fresh top-level LOID such as a class, host, or vault id."""
        if name:
            return LOID((self.domain, type_tag, name))
        serial = self._next((type_tag,))
        return LOID((self.domain, type_tag, f"n{serial}"))

    def mint_instance(self, class_loid: LOID) -> LOID:
        """Mint an instance LOID under ``class_loid``."""
        serial = self._next(class_loid.fields)
        return class_loid.child(f"i{serial}")
