"""Naming substrate: Legion Object Identifiers and the context space."""

from .context import ContextSpace
from .loid import LOID, LOIDMinter

__all__ = ["LOID", "LOIDMinter", "ContextSpace"]
