"""Context space: human-readable hierarchical names bound to LOIDs.

Legion exposes a Unix-like namespace (``/hosts/hotel``, ``/classes/BasicFile``)
mapping path names to LOIDs.  The RMI uses it to look up well-known service
objects (the Collection, the Enactor, default Schedulers) and to enumerate
resource objects at bootstrap.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import BindingError
from .loid import LOID

__all__ = ["ContextSpace"]


def _split(path: str) -> List[str]:
    if not isinstance(path, str) or not path.startswith("/"):
        raise BindingError(f"context paths must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    for p in parts:
        if p in (".", ".."):
            raise BindingError(f"'.'/'..' not permitted in paths: {path!r}")
    return parts


class _Node:
    __slots__ = ("children", "loid")

    def __init__(self) -> None:
        self.children: Dict[str, _Node] = {}
        self.loid: Optional[LOID] = None


class ContextSpace:
    """A tree of name bindings.  Interior nodes are contexts (directories);
    any node may additionally carry a LOID binding."""

    def __init__(self) -> None:
        self._root = _Node()
        self._count = 0

    # -- mutation ------------------------------------------------------------
    def bind(self, path: str, loid: LOID, replace: bool = False) -> None:
        """Bind ``path`` to ``loid``, creating intermediate contexts."""
        if not isinstance(loid, LOID):
            raise BindingError(f"can only bind LOIDs, got {loid!r}")
        node = self._root
        for part in _split(path):
            node = node.children.setdefault(part, _Node())
        if node.loid is not None and not replace:
            raise BindingError(f"{path!r} is already bound to {node.loid}")
        if node.loid is None:
            self._count += 1
        node.loid = loid

    def unbind(self, path: str) -> LOID:
        """Remove the binding at ``path`` (contexts are left in place)."""
        node = self._find(path)
        if node is None or node.loid is None:
            raise BindingError(f"{path!r} is not bound")
        loid, node.loid = node.loid, None
        self._count -= 1
        return loid

    # -- lookup ---------------------------------------------------------------
    def _find(self, path: str) -> Optional[_Node]:
        node = self._root
        for part in _split(path):
            node = node.children.get(part)
            if node is None:
                return None
        return node

    def lookup(self, path: str) -> LOID:
        """Return the LOID bound at ``path`` or raise :class:`BindingError`."""
        node = self._find(path)
        if node is None or node.loid is None:
            raise BindingError(f"no binding at {path!r}")
        return node.loid

    def get(self, path: str, default: Optional[LOID] = None) -> Optional[LOID]:
        node = self._find(path)
        if node is None or node.loid is None:
            return default
        return node.loid

    def exists(self, path: str) -> bool:
        node = self._find(path)
        return node is not None and node.loid is not None

    def list(self, path: str = "/") -> List[str]:
        """Names of the children of the context at ``path``."""
        node = self._root if path == "/" else self._find(path)
        if node is None:
            raise BindingError(f"no context at {path!r}")
        return sorted(node.children)

    def walk(self) -> Iterator[Tuple[str, LOID]]:
        """Yield every ``(path, loid)`` binding, depth-first, sorted."""
        def rec(prefix: str, node: _Node):
            if node.loid is not None:
                yield (prefix or "/", node.loid)
            for name in sorted(node.children):
                yield from rec(prefix + "/" + name, node.children[name])
        yield from rec("", self._root)

    def __len__(self) -> int:
        return self._count

    def __contains__(self, path: str) -> bool:
        return self.exists(path)
