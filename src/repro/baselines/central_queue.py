"""A single-site queue-manager baseline (paper section 5).

"There are many software systems for managing a locally-distributed
multicomputer, including Condor and LoadLeveler. ... While extremely
well-suited to what they do, they do not map well onto wide-area
environments."

This baseline submits every task to one designated Batch Queue Host (its
own site's cluster) and simply queues when the cluster is busy — it cannot
see or use workstations and clusters in other domains.  E13 measures the
throughput/makespan it forfeits relative to metasystem-wide scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import LegionError
from ..hosts.batch_host import BatchQueueHost
from ..naming.loid import LOID
from ..net.transport import Transport
from ..objects.class_object import Placement
from ..scheduler.base import ObjectClassRequest

__all__ = ["CentralQueueBaseline", "CentralQueueOutcome"]


@dataclass
class CentralQueueOutcome:
    ok: bool
    created: List[LOID] = field(default_factory=list)
    messages: int = 0
    elapsed: float = 0.0
    detail: str = ""


class CentralQueueBaseline:
    """Everything goes to one local queue-managed cluster."""

    def __init__(self, cluster: BatchQueueHost, transport: Transport,
                 location=None):
        self.cluster = cluster
        self.transport = transport
        self.location = location

    def run(self, requests: Sequence[ObjectClassRequest]
            ) -> CentralQueueOutcome:
        start = self.transport.sim.now
        msgs_before = self.transport.messages_sent
        outcome = CentralQueueOutcome(ok=True)
        vaults = self.cluster.get_compatible_vaults()
        if not vaults:
            return CentralQueueOutcome(False,
                                       detail="cluster has no vault")
        for request in requests:
            class_obj = request.class_obj
            if not class_obj.supports_platform(
                    self.cluster.machine.spec.arch,
                    self.cluster.machine.spec.os_name):
                outcome.ok = False
                outcome.detail = (f"class {class_obj.name!r} has no "
                                  f"implementation for the local cluster")
                break
            for _i in range(request.count):
                placement = Placement(host_loid=self.cluster.loid,
                                      vault_loid=vaults[0])
                try:
                    result = self.transport.invoke(
                        self.location, self.cluster.location,
                        class_obj.create_instance, placement,
                        now=self.transport.sim.now, label="qsub")
                except LegionError as exc:
                    outcome.ok = False
                    outcome.detail = str(exc)
                    break
                if not result.ok:
                    outcome.ok = False
                    outcome.detail = result.reason
                    break
                outcome.created.append(result.loid)
            if not outcome.ok:
                break
        outcome.messages = self.transport.messages_sent - msgs_before
        outcome.elapsed = self.transport.sim.now - start
        return outcome
