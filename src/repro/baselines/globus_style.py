"""A Globus-1999-style resource broker (paper section 5).

"There is a rough correspondence between Globus Resource Brokers and Legion
Schedulers; Globus Information Services and Legion Collections; Globus
Co-allocators and Legion Enactors; and Globus GRAMs and Legion Host Objects.
... Globus has no intrinsic reservation support, nor do they offer support
for schedule variation — each task in Globus is mapped to exactly one
location."

This baseline therefore: queries the information service once, maps each
task to exactly one host, and submits *without reservations*.  On any
failure it recomputes the whole mapping from scratch (no variants, no held
reservations), up to ``retry_limit`` times.  E13 compares its success rate,
messages, and time-to-placement against the Legion RMI under contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..collection.collection import Collection
from ..errors import LegionError
from ..naming.loid import LOID
from ..net.topology import NetLocation
from ..net.transport import Transport
from ..objects.class_object import Placement
from ..scheduler.base import (
    ObjectClassRequest,
    Scheduler,
    implementation_query,
)

__all__ = ["GlobusStyleBroker", "BrokerOutcome"]

Resolver = Callable[[LOID], Any]


@dataclass
class BrokerOutcome:
    ok: bool
    created: List[LOID] = field(default_factory=list)
    attempts: int = 0
    messages: int = 0
    elapsed: float = 0.0
    detail: str = ""


class GlobusStyleBroker:
    """One-mapping-per-task, no reservations, recompute-on-failure."""

    def __init__(self, collection: Collection, transport: Transport,
                 resolver: Resolver,
                 location: Optional[NetLocation] = None,
                 rng: Optional[np.random.Generator] = None,
                 retry_limit: int = 3):
        self.collection = collection
        self.transport = transport
        self.resolver = resolver
        self.location = location
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.retry_limit = retry_limit

    def _query(self, query: str):
        if self.collection.location is not None:
            return self.transport.invoke(
                self.location, self.collection.location,
                self.collection.query, query, label="info-service")
        return self.collection.query(query)

    def _attempt(self, requests: Sequence[ObjectClassRequest]
                 ) -> BrokerOutcome:
        created: List[LOID] = []
        for request in requests:
            class_obj = request.class_obj
            records = self._query(
                implementation_query(class_obj.get_implementations()))
            if not records:
                return BrokerOutcome(False, created=created,
                                     detail="no viable hosts")
            for _i in range(request.count):
                record = records[self.rng.integers(0, len(records))]
                vaults = Scheduler.compatible_vaults_of(record)
                host = self.resolver(record.member)
                if host is None or not vaults:
                    return BrokerOutcome(False, created=created,
                                         detail="unusable host record")
                placement = Placement(host_loid=record.member,
                                      vault_loid=vaults[0],
                                      reservation_token=None)
                try:
                    result = self.transport.invoke(
                        self.location, host.location,
                        class_obj.create_instance, placement,
                        now=self.transport.sim.now, label="gram-submit")
                except LegionError as exc:
                    return BrokerOutcome(False, created=created,
                                         detail=str(exc))
                if not result.ok:
                    return BrokerOutcome(False, created=created,
                                         detail=result.reason)
                created.append(result.loid)
        return BrokerOutcome(True, created=created)

    def _rollback(self, created: List[LOID]) -> None:
        for loid in created:
            class_obj = self.resolver(loid.class_loid())
            if class_obj is not None:
                try:
                    class_obj.destroy_instance(loid,
                                               now=self.transport.sim.now)
                except LegionError:
                    pass

    def run(self, requests: Sequence[ObjectClassRequest]) -> BrokerOutcome:
        start = self.transport.sim.now
        msgs_before = self.transport.messages_sent
        last = BrokerOutcome(False)
        for attempt in range(1, self.retry_limit + 1):
            outcome = self._attempt(requests)
            outcome.attempts = attempt
            if outcome.ok:
                outcome.messages = (self.transport.messages_sent
                                    - msgs_before)
                outcome.elapsed = self.transport.sim.now - start
                return outcome
            # no partial placements survive — recompute from scratch
            self._rollback(outcome.created)
            outcome.created = []
            last = outcome
        last.messages = self.transport.messages_sent - msgs_before
        last.elapsed = self.transport.sim.now - start
        return last
