"""Related-work baselines (paper section 5) for comparative experiments."""

from .central_queue import CentralQueueBaseline, CentralQueueOutcome
from .dictatorial import DictatorialOutcome, DictatorialScheduler
from .globus_style import BrokerOutcome, GlobusStyleBroker

__all__ = [
    "GlobusStyleBroker", "BrokerOutcome",
    "CentralQueueBaseline", "CentralQueueOutcome",
    "DictatorialScheduler", "DictatorialOutcome",
]
