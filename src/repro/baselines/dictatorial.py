"""A dictatorial (autonomy-blind) scheduler baseline.

"Scheduling in Legion is never of a dictatorial nature; requests are made of
resource guardians, who have final authority over what requests are honored"
(section 3).  To quantify what that philosophy buys, this baseline does what
a non-autonomous RMS would: it computes placements assuming every resource
will obey — ignoring site policies, prices, and acceptance windows it could
have read from the Collection — and issues direct start commands with no
negotiation, no reservations, and no fallback.  In a metasystem whose hosts
*do* enforce local policy, its placements simply fail wherever a guardian
says no (E13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..collection.collection import Collection
from ..errors import LegionError
from ..naming.loid import LOID
from ..net.transport import Transport
from ..objects.class_object import Placement
from ..scheduler.base import (
    ObjectClassRequest,
    Scheduler,
    implementation_query,
)

__all__ = ["DictatorialScheduler", "DictatorialOutcome"]

Resolver = Callable[[LOID], Any]


@dataclass
class DictatorialOutcome:
    ok: bool
    created: List[LOID] = field(default_factory=list)
    refused: int = 0
    messages: int = 0
    elapsed: float = 0.0
    detail: str = ""


class DictatorialScheduler:
    """Place by fiat; count the refusals autonomy produces."""

    def __init__(self, collection: Collection, transport: Transport,
                 resolver: Resolver, location=None,
                 rng: Optional[np.random.Generator] = None):
        self.collection = collection
        self.transport = transport
        self.resolver = resolver
        self.location = location
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def run(self, requests: Sequence[ObjectClassRequest]
            ) -> DictatorialOutcome:
        start = self.transport.sim.now
        msgs_before = self.transport.messages_sent
        outcome = DictatorialOutcome(ok=True)
        for request in requests:
            class_obj = request.class_obj
            # reads only platform viability — deliberately ignores policy,
            # load, slots, and pricing attributes the Collection exports
            records = self.collection.query(
                implementation_query(class_obj.get_implementations(),
                                     require_up=False))
            if not records:
                outcome.ok = False
                outcome.detail = "no hosts known"
                break
            for _i in range(request.count):
                record = records[self.rng.integers(0, len(records))]
                vaults = Scheduler.compatible_vaults_of(record)
                host = self.resolver(record.member)
                if host is None or not vaults:
                    outcome.ok = False
                    outcome.refused += 1
                    continue
                placement = Placement(host_loid=record.member,
                                      vault_loid=vaults[0])
                try:
                    result = self.transport.invoke(
                        self.location, host.location,
                        class_obj.create_instance, placement,
                        now=self.transport.sim.now, label="command")
                except LegionError:
                    outcome.ok = False
                    outcome.refused += 1
                    continue
                if result.ok:
                    outcome.created.append(result.loid)
                else:
                    outcome.ok = False
                    outcome.refused += 1
        outcome.messages = self.transport.messages_sent - msgs_before
        outcome.elapsed = self.transport.sim.now - start
        return outcome
