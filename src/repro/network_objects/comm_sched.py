"""Bandwidth-aware scheduling on top of Network Objects.

With links in the Collection, a Scheduler can reason about communication
the way it reasons about computation.  :class:`BandwidthAwareScheduler`
extends the load-aware policy for *communicating* applications: when a
placement spans two domains, the inter-domain link's available bandwidth
is part of the host-pair score, and the Scheduler asks the Enactor-side
helper :class:`CommCoAllocator` to co-allocate bandwidth alongside the
host reservations (the co-allocation story of section 3 extended to the
section-6 Network Objects).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import LegionError
from ..naming.loid import LOID
from ..schedule.mapping import ScheduleMapping
from ..schedule.schedule import MasterSchedule, ScheduleRequestList
from ..scheduler.load_aware import LoadAwareScheduler
from .link import BandwidthToken, NetworkObject

__all__ = ["LinkRegistry", "BandwidthAwareScheduler", "CommPlan"]


class LinkRegistry:
    """Lookup of NetworkObjects by the domain pair they connect."""

    def __init__(self, links: Sequence[NetworkObject] = ()):
        self._links: List[NetworkObject] = []
        for link in links:
            self.add(link)

    def add(self, link: NetworkObject) -> NetworkObject:
        self._links.append(link)
        return link

    def between(self, domain_a: str,
                domain_b: str) -> Optional[NetworkObject]:
        if domain_a == domain_b:
            return None  # intra-domain traffic does not use a guarded link
        for link in self._links:
            if link.connects(domain_a, domain_b):
                return link
        return None

    def all_links(self) -> List[NetworkObject]:
        return list(self._links)


@dataclass
class CommPlan:
    """Bandwidth requirements implied by a placement: per-link demand."""

    demands: Dict[LOID, float] = field(default_factory=dict)  # link -> B/s
    tokens: List[BandwidthToken] = field(default_factory=list)

    def total_demand(self) -> float:
        return sum(self.demands.values())


class BandwidthAwareScheduler(LoadAwareScheduler):
    """Load-aware placement that also prices inter-domain bandwidth.

    ``pair_traffic`` is the application's estimated bandwidth demand
    (bytes/second) between each *pair of consecutive instances* — the
    simple chain model covers pipelines; stencils can pass their own
    demand matrix via ``traffic_matrix`` (instance index pairs).
    """

    def __init__(self, *args, links: LinkRegistry,
                 host_domains: Dict[LOID, str],
                 pair_traffic: float = 0.0,
                 traffic_matrix: Optional[
                     Dict[Tuple[int, int], float]] = None,
                 bandwidth_weight: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.links = links
        self.host_domains = dict(host_domains)
        self.pair_traffic = pair_traffic
        self.traffic_matrix = traffic_matrix
        self.bandwidth_weight = bandwidth_weight

    # -- scoring ------------------------------------------------------------
    def _pairs(self, n: int) -> Dict[Tuple[int, int], float]:
        if self.traffic_matrix is not None:
            return self.traffic_matrix
        return {(i, i + 1): self.pair_traffic for i in range(n - 1)}

    def comm_penalty(self, entries: Sequence[ScheduleMapping],
                     now: float) -> float:
        """Seconds/unit-time of communication slowdown implied by a
        placement: demand / available bandwidth per loaded link."""
        penalty = 0.0
        for (i, j), demand in self._pairs(len(entries)).items():
            if demand <= 0 or i >= len(entries) or j >= len(entries):
                continue
            da = self.host_domains.get(entries[i].host_loid)
            db = self.host_domains.get(entries[j].host_loid)
            if da is None or db is None or da == db:
                continue
            link = self.links.between(da, db)
            if link is None:
                penalty += 1e6  # unconnected domains: effectively infeasible
                continue
            available = max(link.available_at(now), 1.0)
            penalty += demand / available
        return penalty

    def compute_schedule(self, requests) -> ScheduleRequestList:
        base = super().compute_schedule(requests)
        master = base.masters[0]
        candidates: List[List[ScheduleMapping]] = [master.resolve()]
        for variant in master.variants:
            candidates.append(master.resolve(variant))
        now = self.transport.sim.now

        def score(entries: List[ScheduleMapping]) -> float:
            return self.bandwidth_weight * self.comm_penalty(entries, now)

        best = min(candidates, key=score)
        rebuilt = MasterSchedule(best, label="bandwidth-aware")
        # keep the unchosen candidates as variants for Enactor fallback
        for cand in candidates:
            if cand is best:
                continue
            replacements = {
                idx: m for idx, m in enumerate(cand)
                if not m.same_target(best[idx])}
            if replacements:
                from ..schedule.schedule import VariantSchedule
                rebuilt.add_variant(VariantSchedule(replacements,
                                                    label="bw-alt"))
        return ScheduleRequestList([rebuilt], label="bandwidth-aware")

    # -- bandwidth co-allocation --------------------------------------------
    def allocate_bandwidth(self, entries: Sequence[ScheduleMapping],
                           duration: float,
                           requester_domain: str = "") -> CommPlan:
        """Reserve bandwidth on every inter-domain link the placement uses.

        All-or-nothing: on any denial, already-granted tokens are released
        and the error re-raised — the co-allocation discipline of the
        Enactor applied to communications resources.
        """
        now = self.transport.sim.now
        plan = CommPlan()
        for (i, j), demand in self._pairs(len(entries)).items():
            if demand <= 0 or i >= len(entries) or j >= len(entries):
                continue
            da = self.host_domains.get(entries[i].host_loid)
            db = self.host_domains.get(entries[j].host_loid)
            if da is None or db is None or da == db:
                continue
            link = self.links.between(da, db)
            if link is None:
                continue
            plan.demands[link.loid] = (plan.demands.get(link.loid, 0.0)
                                       + demand)
        try:
            for link_loid, demand in sorted(plan.demands.items()):
                link = next(l for l in self.links.all_links()
                            if l.loid == link_loid)
                plan.tokens.append(link.reserve_bandwidth(
                    demand, now=now, duration=duration,
                    requester_domain=requester_domain))
        except LegionError:
            for token in plan.tokens:
                link = next(l for l in self.links.all_links()
                            if l.loid == token.link_loid)
                link.release_bandwidth(token, now)
            plan.tokens.clear()
            raise
        return plan
