"""Network Objects (paper section 6 future work): guarded communications
resources with bandwidth reservations, plus bandwidth-aware scheduling."""

from .comm_sched import BandwidthAwareScheduler, CommPlan, LinkRegistry
from .link import BandwidthToken, NetworkObject

__all__ = [
    "NetworkObject", "BandwidthToken",
    "LinkRegistry", "BandwidthAwareScheduler", "CommPlan",
]
