"""Network Objects — guardians for communications resources.

Paper section 6 (future work): "We are developing Network Objects to
manage communications resources."

Design: a :class:`NetworkObject` guards one inter-domain link, exactly as a
Host Object guards a machine — it exports an attribute surface (capacity,
current allocation, latency class), grants **bandwidth reservations** with
the same non-forgeable-token discipline as Host reservations, and enforces
a local policy (a domain may refuse to carry another domain's traffic).
Joined to a Collection, links become schedulable resources: a
communication-aware Scheduler can co-allocate bandwidth alongside hosts
(see :class:`~repro.network_objects.comm_sched.BandwidthAwareScheduler`).
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
import os
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..errors import (
    InvalidReservationError,
    PlacementPolicyError,
    ReservationDeniedError,
)
from ..naming.loid import LOID
from ..objects.base import LegionObject

__all__ = ["BandwidthToken", "NetworkObject"]


@dataclass(frozen=True)
class BandwidthToken:
    """An unforgeable grant of ``bandwidth`` on one link for a window."""

    token_id: int
    link_loid: LOID
    bandwidth: float          # bytes/second
    start: float
    end: float
    issued_at: float
    signature: bytes = b""

    def payload(self) -> bytes:
        return "|".join([
            str(self.token_id), str(self.link_loid),
            repr(self.bandwidth), repr(self.start), repr(self.end),
            repr(self.issued_at),
        ]).encode("utf-8")

    def signed(self, secret: bytes) -> "BandwidthToken":
        sig = hmac.new(secret, self.payload(), hashlib.sha256).digest()
        return replace(self, signature=sig)

    def verify(self, secret: bytes) -> bool:
        expected = hmac.new(secret, self.payload(),
                            hashlib.sha256).digest()
        return hmac.compare_digest(expected, self.signature)


class _Grant:
    __slots__ = ("token", "cancelled")

    def __init__(self, token: BandwidthToken):
        self.token = token
        self.cancelled = False


class NetworkObject(LegionObject):
    """Guardian for the link between two administrative domains.

    ``capacity`` is the link's total bandwidth (bytes/second).  Bandwidth
    reservations are admission-controlled so the sum of live grants never
    exceeds capacity at any instant.
    """

    _ids = itertools.count(1)

    def __init__(self, loid: LOID, domain_a: str, domain_b: str,
                 capacity: float = 1.0e6,
                 base_latency: float = 0.025,
                 refused_domains: Optional[List[str]] = None):
        super().__init__(loid)
        if capacity <= 0:
            raise ValueError("link capacity must be positive")
        self.domain_a = domain_a
        self.domain_b = domain_b
        self.capacity = float(capacity)
        self.base_latency = float(base_latency)
        self.refused_domains = frozenset(refused_domains or [])
        self._secret = os.urandom(16)
        self._grants: Dict[int, _Grant] = {}
        self.grants_made = 0
        self.denials = 0
        self.attributes.update({
            "link_domains": sorted([domain_a, domain_b]),
            "link_capacity": self.capacity,
            "link_latency": self.base_latency,
        })

    # -- admission ----------------------------------------------------------
    def connects(self, domain_a: str, domain_b: str) -> bool:
        return {domain_a, domain_b} == {self.domain_a, self.domain_b}

    def allocated_at(self, t: float) -> float:
        """Total granted bandwidth covering instant ``t``."""
        return sum(g.token.bandwidth for g in self._grants.values()
                   if not g.cancelled and g.token.start <= t < g.token.end)

    def available_at(self, t: float) -> float:
        return self.capacity - self.allocated_at(t)

    def _admissible(self, bandwidth: float, start: float,
                    end: float) -> bool:
        # check at all window boundaries overlapping the request
        points = {start}
        for g in self._grants.values():
            if g.cancelled:
                continue
            if g.token.start < end and start < g.token.end:
                points.add(max(g.token.start, start))
        return all(self.allocated_at(p) + bandwidth <= self.capacity
                   + 1e-9 for p in points)

    # -- the reservation interface (mirrors Host Objects) --------------------
    def reserve_bandwidth(self, bandwidth: float, now: float,
                          duration: float,
                          start: Optional[float] = None,
                          requester_domain: str = "") -> BandwidthToken:
        """Grant a bandwidth reservation or raise."""
        if bandwidth <= 0 or duration <= 0:
            raise ReservationDeniedError(
                "bandwidth and duration must be positive")
        if requester_domain in self.refused_domains:
            raise PlacementPolicyError(
                f"link {self.loid}: traffic from "
                f"{requester_domain!r} refused")
        t0 = now if start is None else start
        if t0 < now:
            raise ReservationDeniedError("start in the past")
        t1 = t0 + duration
        if not self._admissible(bandwidth, t0, t1):
            self.denials += 1
            raise ReservationDeniedError(
                f"link {self.loid}: {bandwidth:.0f} B/s not available "
                f"over [{t0}, {t1})")
        token = BandwidthToken(
            token_id=next(self._ids), link_loid=self.loid,
            bandwidth=float(bandwidth), start=t0, end=t1,
            issued_at=now).signed(self._secret)
        self._grants[token.token_id] = _Grant(token)
        self.grants_made += 1
        return token

    def check_bandwidth(self, token: BandwidthToken, now: float) -> bool:
        grant = self._grants.get(token.token_id)
        if grant is None or grant.cancelled:
            return False
        if not token.verify(self._secret) or grant.token != token:
            return False
        return now < token.end

    def release_bandwidth(self, token: BandwidthToken, now: float) -> None:
        grant = self._grants.get(token.token_id)
        if grant is None or not token.verify(self._secret):
            raise InvalidReservationError(
                f"unknown/forged bandwidth token {token.token_id}")
        grant.cancelled = True

    # -- performance model -----------------------------------------------------
    def transfer_time(self, nbytes: float, granted: float) -> float:
        """Time to move ``nbytes`` using a grant of ``granted`` B/s."""
        if granted <= 0:
            raise ValueError("granted bandwidth must be positive")
        return self.base_latency + nbytes / granted

    def effective_share(self, now: float, flows: int = 1) -> float:
        """Best-effort share for unreserved traffic (fair split of what is
        left after reservations)."""
        free = max(0.0, self.available_at(now))
        return free / max(1, flows)

    def utilization_at(self, t: float) -> float:
        return self.allocated_at(t) / self.capacity

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<NetworkObject {self.domain_a}<->{self.domain_b} "
                f"cap={self.capacity:.0f}B/s>")
