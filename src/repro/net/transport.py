"""The RPC transport: latency-charged method invocation over the simulator.

Design (DESIGN.md section 4): RMI protocol code runs on the Python stack, but
every remote invocation passes through :meth:`Transport.invoke`, which

1. checks reachability (raising :class:`HostUnreachableError` on partition or
   node failure) and samples message loss;
2. samples the request latency, advances the virtual clock by it, and drains
   world events up to the new time (``Simulator.run_until``) so the callee
   observes a current world;
3. executes the target callable;
4. charges the reply latency the same way.

:meth:`Transport.parallel_invoke` models the Enactor issuing reservation
requests to several Hosts *concurrently*: calls execute in arrival order, and
the clock finishes at the **max** completion time rather than the sum, so
co-allocation cost scales with the slowest resource — the behaviour E8
measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    CircuitOpenError,
    HostUnreachableError,
    MessageLostError,
    NetworkError,
)
from ..obs.registry import DEFAULT_SIZE_BUCKETS, MetricsRegistry
from ..obs.spans import SpanTracer, TraceContext
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from ..sim.tracing import Tracer
from .latency import LatencyModel
from .topology import NetLocation, Topology

__all__ = ["Transport", "Call", "CallOutcome"]


@dataclass(frozen=True, slots=True)
class Call:
    """One remote invocation for :meth:`Transport.parallel_invoke`."""

    src: Optional[NetLocation]
    dst: NetLocation
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""
    #: carried trace context — callee-side spans parent under the sender
    context: Optional[TraceContext] = None


@dataclass(slots=True)
class CallOutcome:
    """Result slot from a parallel invocation."""

    ok: bool
    value: Any = None
    error: Optional[Exception] = None
    completed_at: float = 0.0


class Transport:
    """Latency-charging invocation layer bound to one simulator."""

    #: a lost message costs the sender this many request latencies before
    #: the timeout fires (instances may override via ``loss_timeout_factor``)
    LOSS_TIMEOUT_FACTOR = 4.0

    def __init__(self, sim: Simulator, topology: Topology,
                 latency_model: LatencyModel, rngs: RngRegistry,
                 tracer: Optional[Tracer] = None,
                 loss_probability: float = 0.0,
                 metrics: Optional[MetricsRegistry] = None,
                 spans: Optional[SpanTracer] = None):
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss_probability must be in [0, 1]")
        self.sim = sim
        self.topology = topology
        self.latency_model = latency_model
        self.rng = rngs.stream("net", "latency")
        self._loss_rng = rngs.stream("net", "loss")
        self.tracer = tracer if tracer is not None else Tracer(
            lambda: sim.now)
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry(lambda: sim.now))
        self.spans = spans if spans is not None else SpanTracer(
            lambda: sim.now)
        self.loss_probability = loss_probability
        self.loss_timeout_factor = self.LOSS_TIMEOUT_FACTOR
        #: opt-in retry layer (duck-typed; see repro.chaos.retry.RetryPolicy)
        self.retry_policy = None
        #: opt-in per-destination circuit breakers (duck-typed; see
        #: repro.guardrails.breaker.BreakerBoard)
        self.breakers = None
        # chaos hooks: additive spikes compose as max(base, spikes) and
        # multiplicative factors as a product, so overlapping faults can
        # revert in any order without clobbering each other's state.
        self._loss_spikes: List[float] = []
        self._latency_factors: List[float] = []
        self.messages_sent = 0
        self.messages_lost = 0
        self.retries = 0

    # -- chaos hooks ---------------------------------------------------------
    def push_loss_spike(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("loss spike probability must be in [0, 1]")
        self._loss_spikes.append(float(probability))

    def pop_loss_spike(self, probability: float) -> None:
        self._loss_spikes.remove(float(probability))

    def push_latency_factor(self, factor: float) -> None:
        if factor <= 0.0:
            raise ValueError("latency factor must be positive")
        self._latency_factors.append(float(factor))

    def pop_latency_factor(self, factor: float) -> None:
        self._latency_factors.remove(float(factor))

    def clear_spikes(self) -> int:
        """Drop all chaos spikes (injector teardown safety net)."""
        n = len(self._loss_spikes) + len(self._latency_factors)
        self._loss_spikes.clear()
        self._latency_factors.clear()
        return n

    def effective_loss_probability(self) -> float:
        if not self._loss_spikes:
            return self.loss_probability
        return max(self.loss_probability, max(self._loss_spikes))

    def _sample_latency(self, src: Optional[NetLocation],
                        dst: Optional[NetLocation]) -> float:
        lat = self.latency_model.sample_latency(self.rng, src, dst)
        for factor in self._latency_factors:
            lat *= factor
        return lat

    def _count_message(self, lost: bool = False) -> None:
        self.messages_sent += 1
        self.metrics.count("transport_messages_total", kind="sent")
        if lost:
            self.messages_lost += 1
            self.metrics.count("transport_messages_total", kind="lost")

    # -- single call --------------------------------------------------------
    def _one_way(self, src: Optional[NetLocation], dst: NetLocation,
                 label: str) -> None:
        """Charge one message hop, or raise."""
        if not self.topology.reachable(src, dst):
            raise HostUnreachableError(f"{src} -> {dst} unreachable "
                                       f"({label})")
        p = self.effective_loss_probability()
        lost = p > 0.0 and self._loss_rng.random() < p
        self._count_message(lost=lost)
        if lost:
            # the sender still waits out a timeout before seeing the loss
            lat = self._sample_latency(src, dst)
            self.sim.run_until(self.sim.now + self.loss_timeout_factor * lat)
            raise MessageLostError(f"message {src} -> {dst} lost ({label})")
        lat = self._sample_latency(src, dst)
        self.sim.run_until(self.sim.now + lat)

    def _reply_hop(self, src: Optional[NetLocation], dst: NetLocation,
                   label: str) -> None:
        """Charge the reply message from ``dst`` back to ``src``.

        When ``src`` is a well-connected service endpoint (None), the reply
        is charged with the same src=None distribution as the request.
        """
        if src is not None:
            self._one_way(dst, src, label)
        else:
            self._one_way(None, dst, label)

    def invoke(self, src: Optional[NetLocation], dst: NetLocation,
               fn: Callable[..., Any], *args: Any,
               label: str = "", idempotent: bool = False,
               **kwargs: Any) -> Any:
        """Synchronous remote call: request hop, execute, reply hop.

        When a :attr:`retry_policy` is installed and the caller marks the
        call ``idempotent=True``, network failures are retried with seeded
        backoff; without a policy (the default) the flag is a no-op, so
        callers may tag idempotent calls unconditionally.
        """
        policy = self.retry_policy
        if policy is None or not idempotent:
            return self._invoke_once(src, dst, fn, *args, label=label,
                                     **kwargs)
        name = label or getattr(fn, "__name__", "call")
        first_try = self.sim.now
        attempt = 0
        while True:
            try:
                return self._invoke_once(src, dst, fn, *args, label=label,
                                         **kwargs)
            except NetworkError as exc:
                attempt += 1
                delay = policy.next_delay(exc, attempt,
                                          self.sim.now - first_try)
                if delay is None:
                    raise
                self.retries += 1
                self.metrics.count("transport_retries_total", label=name)
                self.sim.run_until(self.sim.now + delay)

    def _invoke_once(self, src: Optional[NetLocation], dst: NetLocation,
                     fn: Callable[..., Any], *args: Any,
                     label: str = "", **kwargs: Any) -> Any:
        breakers = self.breakers
        if breakers is not None:
            # fail fast before charging any hop; CircuitOpenError is
            # non-retryable so a RetryPolicy gives up immediately
            breakers.check(dst)
        t0 = self.sim.now
        name = label or getattr(fn, "__name__", "call")
        callee_error: Optional[Exception] = None
        try:
            with self.spans.span_if_active(f"rpc:{name}", src=str(src),
                                           dst=str(dst)):
                self._one_way(src, dst, name)
                try:
                    result = fn(*args, **kwargs)
                except Exception as exc:
                    callee_error = exc
                    self._reply_hop(src, dst, "error-reply")
                    raise
                self._reply_hop(src, dst, "reply")
        except NetworkError as exc:
            if breakers is not None:
                if exc is callee_error:
                    # the callee raised it (e.g. a nested invoke further
                    # downstream) and the error-reply landed: dst is alive
                    breakers.record_success(dst)
                else:
                    breakers.record_failure(dst)
            raise
        except Exception:
            # application error with a delivered error-reply: dst is alive
            if breakers is not None:
                breakers.record_success(dst)
            raise
        if breakers is not None:
            breakers.record_success(dst)
        self.tracer.emit("net", "invoke",
                         src=str(src), dst=str(dst), label=name,
                         rtt=self.sim.now - t0)
        self.metrics.observe("transport_invoke_rtt_seconds",
                             self.sim.now - t0)
        return result

    def transfer(self, src: Optional[NetLocation], dst: NetLocation,
                 nbytes: float, label: str = "transfer") -> float:
        """Charge a bulk data transfer (e.g. moving an OPR between vaults).

        Returns the elapsed transfer time."""
        if not self.topology.reachable(src, dst):
            raise HostUnreachableError(f"{src} -> {dst} unreachable "
                                       f"({label})")
        elapsed = self.latency_model.transfer_time(self.rng, nbytes, src,
                                                   dst)
        for factor in self._latency_factors:
            elapsed *= factor
        with self.spans.span_if_active(f"transfer:{label}", src=str(src),
                                       dst=str(dst), nbytes=nbytes):
            self._count_message()
            self.metrics.count("transport_transfer_bytes_total", nbytes)
            self.sim.run_until(self.sim.now + elapsed)
        self.tracer.emit("net", "transfer", src=str(src), dst=str(dst),
                         nbytes=nbytes, elapsed=elapsed)
        return elapsed

    # -- parallel calls ------------------------------------------------------
    def parallel_invoke(self, calls: Sequence[Call]) -> List[CallOutcome]:
        """Issue several calls concurrently; finish at the slowest one.

        Outcomes are returned in input order.  Individual failures (network
        or callee exceptions) are captured per-slot, not raised — the Enactor
        needs all outcomes to decide between master and variant schedules.
        """
        start = self.sim.now
        outcomes: List[CallOutcome] = [CallOutcome(False) for _ in calls]
        if not calls:
            return outcomes

        # The caller's context backs any call that carries none of its own.
        caller_ctx = self.spans.current_context()

        def _call_name(call: Call) -> str:
            return call.label or getattr(call.fn, "__name__", "call")

        def _failed_span(call: Call, error: Exception) -> None:
            """A zero-length error span for a call that never executed."""
            with self.spans.activate(call.context or caller_ctx):
                with self.spans.span_if_active(
                        f"rpc:{_call_name(call)}", src=str(call.src),
                        dst=str(call.dst)) as sp:
                    sp.set_status("error")
                    sp.set_attribute(
                        "error", f"{type(error).__name__}: {error}")

        # Sample all request latencies up front, execute in arrival order.
        breakers = self.breakers
        arrivals: List[Tuple[float, int]] = []
        for i, call in enumerate(calls):
            if breakers is not None and not breakers.allow(call.dst):
                err: Exception = CircuitOpenError(
                    f"circuit open for {call.dst}")
                outcomes[i] = CallOutcome(False, error=err,
                                          completed_at=start)
                _failed_span(call, err)
                continue
            if not self.topology.reachable(call.src, call.dst):
                err = HostUnreachableError(
                    f"{call.src} -> {call.dst}")
                outcomes[i] = CallOutcome(False, error=err,
                                          completed_at=start)
                _failed_span(call, err)
                if breakers is not None:
                    breakers.record_failure(call.dst)
                continue
            p = self.effective_loss_probability()
            lost = p > 0.0 and self._loss_rng.random() < p
            self._count_message(lost=lost)
            if lost:
                lat = self._sample_latency(call.src, call.dst)
                err = MessageLostError(str(call.dst))
                outcomes[i] = CallOutcome(
                    False, error=err,
                    completed_at=start + self.loss_timeout_factor * lat)
                _failed_span(call, err)
                if breakers is not None:
                    breakers.record_failure(call.dst)
                continue
            lat = self._sample_latency(call.src, call.dst)
            arrivals.append((start + lat, i))

        completion = start
        replies = 0
        for arrive_at, i in sorted(arrivals):
            call = calls[i]
            self.sim.run_until(arrive_at)
            with self.spans.activate(call.context or caller_ctx):
                with self.spans.span_if_active(
                        f"rpc:{_call_name(call)}", src=str(call.src),
                        dst=str(call.dst)) as sp:
                    try:
                        value = call.fn(*call.args, **call.kwargs)
                        ok, err2 = True, None
                    except Exception as exc:
                        ok, err2, value = False, exc, None
                        sp.set_status("error")
                        sp.set_attribute(
                            "error", f"{type(exc).__name__}: {exc}")
            if breakers is not None:
                # the callee ran, so the destination is reachable —
                # even when it answered with an application error
                breakers.record_success(call.dst)
            reply_lat = (self._sample_latency(call.dst, call.src)
                         if call.src is not None
                         else self._sample_latency(None, call.dst))
            replies += 1
            done = self.sim.now + reply_lat
            if sp.end is not None:
                # stretch the rpc span over the full request->reply window
                # (the call executed mid-batch; its cost is the round trip)
                sp.start, sp.end = start, done
            outcomes[i] = CallOutcome(ok, value=value, error=err2,
                                      completed_at=done)
            completion = max(completion, done)
        if replies:
            # reply hops are accounted in one batch: same totals as the
            # per-hop path, one counter update instead of len(arrivals)
            self.messages_sent += replies
            self.metrics.count("transport_messages_total", replies,
                               kind="sent")

        # Failed/lost slots may have later timeout completions.
        for o in outcomes:
            completion = max(completion, o.completed_at)
        self.sim.run_until(completion)
        self.tracer.emit("net", "parallel_invoke", n=len(calls),
                         elapsed=self.sim.now - start)
        self.metrics.observe("transport_parallel_batch_size", len(calls),
                             buckets=DEFAULT_SIZE_BUCKETS)
        return outcomes
