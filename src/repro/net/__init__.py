"""Simulated wide-area network: domains, latency models, RPC transport."""

from .latency import LatencyModel, MetasystemLatencyModel, ZeroLatencyModel
from .topology import AdministrativeDomain, NetLocation, Topology
from .transport import Call, CallOutcome, Transport

__all__ = [
    "Topology", "AdministrativeDomain", "NetLocation",
    "LatencyModel", "MetasystemLatencyModel", "ZeroLatencyModel",
    "Transport", "Call", "CallOutcome",
]
