"""Latency and transfer-time models for the simulated wide-area network.

Calibrated to late-1990s metacomputing conditions (the paper's era):
sub-millisecond local calls, ~1 ms LAN round-trips within a domain, and tens
to hundreds of milliseconds between administrative domains, with heavy-tailed
jitter.  All parameters are constructor arguments so experiments can sweep
them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim.distributions import Clipped, Distribution, LogNormal
from .topology import NetLocation, Topology

__all__ = ["LatencyModel", "MetasystemLatencyModel", "ZeroLatencyModel"]


class LatencyModel:
    """Abstract one-way message latency + bulk-transfer model."""

    def sample_latency(self, rng: np.random.Generator,
                       src: Optional[NetLocation],
                       dst: NetLocation) -> float:
        raise NotImplementedError

    def transfer_time(self, rng: np.random.Generator,
                      nbytes: float,
                      src: Optional[NetLocation],
                      dst: NetLocation) -> float:
        raise NotImplementedError


class MetasystemLatencyModel(LatencyModel):
    """Domain-aware latency: local < intra-domain < inter-domain.

    Parameters
    ----------
    topology:
        Used for domain-distance scaling of inter-domain latency.
    local_overhead:
        Cost of a method call on the same node (seconds).
    intra, inter:
        Base one-way latency distributions within / across domains.  The
        inter-domain sample is multiplied by the topology's domain distance.
    intra_bandwidth, inter_bandwidth:
        Bulk-transfer bandwidth in bytes/second (for OPR migration).
    """

    def __init__(self, topology: Topology,
                 local_overhead: float = 50e-6,
                 intra: Optional[Distribution] = None,
                 inter: Optional[Distribution] = None,
                 intra_bandwidth: float = 1.0e6,
                 inter_bandwidth: float = 100.0e3):
        self.topology = topology
        self.local_overhead = local_overhead
        # LogNormal(mu, sigma): medians of ~0.5ms intra and ~25ms inter.
        self.intra = intra or Clipped(
            LogNormal(mu=-7.6, sigma=0.35), low=1e-4, high=0.05)
        self.inter = inter or Clipped(
            LogNormal(mu=-3.7, sigma=0.5), low=5e-3, high=2.0)
        self.intra_bandwidth = intra_bandwidth
        self.inter_bandwidth = inter_bandwidth

    def sample_latency(self, rng: np.random.Generator,
                       src: Optional[NetLocation],
                       dst: NetLocation) -> float:
        if src is not None and src == dst:
            return self.local_overhead
        if src is None or src.domain == dst.domain:
            return float(self.intra.sample(rng))
        scale = 0.5 * self.topology.domain_distance(src.domain, dst.domain)
        return float(self.inter.sample(rng)) * max(scale, 1.0)

    def transfer_time(self, rng: np.random.Generator,
                      nbytes: float,
                      src: Optional[NetLocation],
                      dst: NetLocation) -> float:
        lat = self.sample_latency(rng, src, dst)
        if src is not None and src == dst:
            return lat
        if src is None or src.domain == dst.domain:
            bw = self.intra_bandwidth
        else:
            bw = self.inter_bandwidth
        return lat + float(nbytes) / bw


class ZeroLatencyModel(LatencyModel):
    """All calls are free — for pure-algorithm unit tests and microbenches."""

    def sample_latency(self, rng: np.random.Generator,
                       src: Optional[NetLocation],
                       dst: NetLocation) -> float:
        return 0.0

    def transfer_time(self, rng: np.random.Generator,
                      nbytes: float,
                      src: Optional[NetLocation],
                      dst: NetLocation) -> float:
        return 0.0
