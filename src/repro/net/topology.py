"""Network topology: administrative domains and node locations.

The paper's setting is a metasystem "combining hosts from multiple
administrative domains via transnational and world-wide networks".  Two
properties of that setting matter to the RMI and are modeled here:

* **domain structure** — message cost differs sharply within vs. across
  domains, and co-allocation (section 3) must negotiate with resources in
  several domains;
* **reachability faults** — domains can be partitioned from each other and
  individual nodes can be down; "Legion objects are built to accommodate
  failure at any step in the scheduling process" (section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..errors import NetworkError

__all__ = ["NetLocation", "AdministrativeDomain", "Topology"]


@dataclass(frozen=True)
class NetLocation:
    """A network endpoint: a node within an administrative domain."""

    domain: str
    node_id: str

    def __str__(self) -> str:
        return f"{self.domain}/{self.node_id}"


@dataclass
class AdministrativeDomain:
    """One autonomous site.

    ``distance`` is an abstract geographic scale factor applied to
    inter-domain latency (1.0 = nearby, larger = farther).
    """

    name: str
    description: str = ""
    distance: float = 1.0


class Topology:
    """Registry of domains and nodes, plus reachability state."""

    def __init__(self) -> None:
        self._domains: Dict[str, AdministrativeDomain] = {}
        self._nodes: Dict[str, Set[str]] = {}
        self._partitions: Set[FrozenSet[str]] = set()
        self._down_nodes: Set[NetLocation] = set()

    # -- construction ------------------------------------------------------
    def add_domain(self, domain: AdministrativeDomain) -> AdministrativeDomain:
        if domain.name in self._domains:
            raise NetworkError(f"duplicate domain {domain.name!r}")
        self._domains[domain.name] = domain
        self._nodes[domain.name] = set()
        return domain

    def add_node(self, domain: str, node_id: str) -> NetLocation:
        if domain not in self._domains:
            raise NetworkError(f"unknown domain {domain!r}")
        if node_id in self._nodes[domain]:
            raise NetworkError(f"duplicate node {node_id!r} in {domain!r}")
        self._nodes[domain].add(node_id)
        return NetLocation(domain, node_id)

    # -- queries --------------------------------------------------------------
    def domains(self) -> List[AdministrativeDomain]:
        return list(self._domains.values())

    def domain(self, name: str) -> AdministrativeDomain:
        try:
            return self._domains[name]
        except KeyError:
            raise NetworkError(f"unknown domain {name!r}") from None

    def nodes_in(self, domain: str) -> List[NetLocation]:
        if domain not in self._nodes:
            raise NetworkError(f"unknown domain {domain!r}")
        return [NetLocation(domain, n) for n in sorted(self._nodes[domain])]

    def has_node(self, loc: NetLocation) -> bool:
        return loc.node_id in self._nodes.get(loc.domain, set())

    def domain_distance(self, a: str, b: str) -> float:
        """Abstract distance between two domains (0.0 within a domain)."""
        if a == b:
            return 0.0
        return self.domain(a).distance + self.domain(b).distance

    # -- fault state -------------------------------------------------------------
    def partition(self, domain_a: str, domain_b: str) -> None:
        """Cut connectivity between two domains (symmetric)."""
        self.domain(domain_a), self.domain(domain_b)  # validate
        self._partitions.add(frozenset((domain_a, domain_b)))

    def heal(self, domain_a: str, domain_b: str) -> None:
        self._partitions.discard(frozenset((domain_a, domain_b)))

    def set_node_down(self, loc: NetLocation, down: bool = True) -> None:
        if not self.has_node(loc):
            raise NetworkError(f"unknown node {loc}")
        if down:
            self._down_nodes.add(loc)
        else:
            self._down_nodes.discard(loc)

    def node_up(self, loc: NetLocation) -> bool:
        return self.has_node(loc) and loc not in self._down_nodes

    def partitions(self) -> List[Tuple[str, str]]:
        """Currently-cut domain pairs, sorted for deterministic output."""
        return sorted(tuple(sorted(p)) for p in self._partitions)

    def down_nodes(self) -> List[NetLocation]:
        """Currently-down nodes, sorted for deterministic output."""
        return sorted(self._down_nodes, key=lambda l: (l.domain, l.node_id))

    def clear_faults(self) -> int:
        """Heal every partition and raise every down node.

        Used by the chaos injector's teardown to guarantee the topology
        leaves a campaign fault-free.  Returns the number of fault entries
        cleared."""
        cleared = len(self._partitions) + len(self._down_nodes)
        self._partitions.clear()
        self._down_nodes.clear()
        return cleared

    def reachable(self, src: Optional[NetLocation],
                  dst: NetLocation) -> bool:
        """Can a message from ``src`` reach ``dst``?  ``src=None`` means an
        in-system service endpoint assumed always connected (e.g. the user's
        workstation running the Scheduler)."""
        if not self.node_up(dst):
            return False
        if src is None:
            return True
        if not self.node_up(src):
            return False
        if src.domain != dst.domain:
            if frozenset((src.domain, dst.domain)) in self._partitions:
                return False
        return True

    def all_nodes(self) -> List[NetLocation]:
        out: List[NetLocation] = []
        for d in sorted(self._nodes):
            out.extend(NetLocation(d, n) for n in sorted(self._nodes[d]))
        return out
