"""The standard Unix Host Object.

"The standard Unix Host Object maintains a reservation table in the Host
Object, because the Unix OS has no notion of reservations" (section 3.1).
The base :class:`~repro.hosts.host_object.HostObject` already implements
that table; this subclass adds the interactive-workstation flavour: a
default load-ceiling admission guard and the standard high-load RGE trigger
a Monitor can subscribe to.
"""

from __future__ import annotations

from typing import Optional

from .host_object import HostObject

__all__ = ["UnixHost"]


class UnixHost(HostObject):
    """Host Object for a single Unix workstation or SMP."""

    #: event name raised when the machine's load crosses the trigger level
    LOAD_EVENT = "host.load.high"
    #: event raised when the machine recovers below the trigger level
    LOAD_OK_EVENT = "host.load.ok"

    def __init__(self, *args, load_trigger_level: float = 4.0,
                 trigger_min_interval: float = 60.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.load_trigger_level = load_trigger_level
        self.rge.define_trigger(
            self.LOAD_EVENT,
            lambda host: host.machine.load_average > host.load_trigger_level,
            edge_triggered=True,
            min_interval=trigger_min_interval)
        self.rge.define_trigger(
            self.LOAD_OK_EVENT,
            lambda host: host.machine.load_average <= host.load_trigger_level,
            edge_triggered=True,
            min_interval=trigger_min_interval)

    def reassess(self, now: Optional[float] = None) -> None:
        super().reassess(now=now)
        self.attributes.set("host_kind", "unix",
                            now=self.sim.now if now is None else now)
