"""Reservations: non-forgeable tokens and the per-Host reservation table.

Paper section 3.1: "To support scheduling, Hosts grant reservations for
future service. ... they must be non-forgeable tokens; the Host Object must
recognize these tokens when they are passed in with service requests. ...
Our current implementation of reservations encodes both the Host and the
Vault which will be used for execution of the object."

"Legion reservations have a start time, a duration, and an optional timeout
period. ... The timeout period indicates how long the recipient has to
confirm the reservation if the start time indicates an instantaneous
reservation.  Confirmation is implicit when the reservation token is
presented with the StartObject() call.  Our reservations have two type bits:
reuse and share" — giving the four types of Table 2:

====================  =======  =======
type                  share    reuse
====================  =======  =======
one-shot space        0        0
reusable space        0        1
one-shot timesharing  1        0
reusable timesharing  1        1
====================  =======  =======

An *unshared* reservation allocates the entire resource for its window; a
*shared* one multiplexes the resource (bounded by the host's slot count).  A
*reusable* token may be presented to multiple StartObject() calls.

Non-forgeability is realized with an HMAC-SHA256 signature over the token
fields using a per-host secret; only the issuing Host can mint or verify its
tokens.  "It is not necessary for any other object in the system to be able
to decode the reservation token."
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..errors import InvalidReservationError, ReservationDeniedError
from ..naming.loid import LOID

__all__ = [
    "ReservationType",
    "ONE_SHOT_SPACE",
    "REUSABLE_SPACE",
    "ONE_SHOT_TIME",
    "REUSABLE_TIME",
    "ReservationToken",
    "ReservationTable",
]


@dataclass(frozen=True)
class ReservationType:
    """The two type bits of a Legion reservation (Table 2)."""

    share: bool
    reuse: bool

    @property
    def name(self) -> str:
        kind = "timesharing" if self.share else "space"
        shot = "reusable" if self.reuse else "one-shot"
        return f"{shot} {kind}"

    def __str__(self) -> str:
        return self.name


ONE_SHOT_SPACE = ReservationType(share=False, reuse=False)
REUSABLE_SPACE = ReservationType(share=False, reuse=True)
ONE_SHOT_TIME = ReservationType(share=True, reuse=False)
REUSABLE_TIME = ReservationType(share=True, reuse=True)

ALL_TYPES = (ONE_SHOT_SPACE, REUSABLE_SPACE, ONE_SHOT_TIME, REUSABLE_TIME)

#: start_time value meaning "now" — an instantaneous reservation, subject to
#: the confirmation timeout.
INSTANTANEOUS = -1.0


@dataclass(frozen=True)
class ReservationToken:
    """An unforgeable grant of future service on one (Host, Vault) pair."""

    token_id: int
    host_loid: LOID
    vault_loid: LOID
    class_loid: LOID
    rtype: ReservationType
    start_time: float          # absolute virtual time; INSTANTANEOUS for "now"
    duration: float
    timeout: float             # confirmation window for instantaneous grants
    issued_at: float
    signature: bytes = b""

    def payload(self) -> bytes:
        return "|".join([
            str(self.token_id), str(self.host_loid), str(self.vault_loid),
            str(self.class_loid), str(int(self.rtype.share)),
            str(int(self.rtype.reuse)), repr(self.start_time),
            repr(self.duration), repr(self.timeout), repr(self.issued_at),
        ]).encode("utf-8")

    def signed(self, secret: bytes) -> "ReservationToken":
        sig = hmac.new(secret, self.payload(), hashlib.sha256).digest()
        return replace(self, signature=sig)

    def verify(self, secret: bytes) -> bool:
        expected = hmac.new(secret, self.payload(), hashlib.sha256).digest()
        return hmac.compare_digest(expected, self.signature)

    @property
    def instantaneous(self) -> bool:
        return self.start_time == INSTANTANEOUS

    def window(self) -> Tuple[float, float]:
        """The reserved interval; instantaneous windows start at issue time."""
        start = self.issued_at if self.instantaneous else self.start_time
        return (start, start + self.duration)


class _Entry:
    __slots__ = ("token", "cancelled", "redeemed", "confirmed")

    def __init__(self, token: ReservationToken):
        self.token = token
        self.cancelled = False
        self.redeemed = 0      # number of StartObject presentations
        self.confirmed = False

    def expired(self, now: float) -> bool:
        tok = self.token
        if tok.instantaneous and not self.confirmed and tok.timeout > 0:
            if now > tok.issued_at + tok.timeout:
                return True
        start, end = tok.window()
        return now > end


class ReservationTable:
    """The Host-side reservation ledger (the paper's "reservation table").

    Admission rules over any instant ``t``:

    * an **unshared** reservation may be granted only if no other live
      reservation overlaps its window, and it blocks all later overlaps;
    * **shared** reservations may overlap each other up to ``slots``
      concurrent grants, but never overlap an unshared one.
    """

    _ids = itertools.count(1)

    def __init__(self, host_loid: LOID, secret: bytes, slots: int = 4):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.host_loid = host_loid
        self._secret = secret
        self.slots = slots
        self._entries: Dict[int, _Entry] = {}
        self.grants = 0
        self.denials = 0
        self.cancellations = 0

    # -- internal helpers ---------------------------------------------------
    def _live_entries(self, now: float) -> List[_Entry]:
        return [e for e in self._entries.values()
                if not e.cancelled and not e.expired(now)]

    @staticmethod
    def _overlaps(a: Tuple[float, float], b: Tuple[float, float]) -> bool:
        return a[0] < b[1] and b[0] < a[1]

    def _admissible(self, tok: ReservationToken, now: float) -> bool:
        window = tok.window()
        overlapping = [e for e in self._live_entries(now)
                       if self._overlaps(window, e.token.window())]
        if not tok.rtype.share:
            return not overlapping
        if any(not e.token.rtype.share for e in overlapping):
            return False
        return len(overlapping) < self.slots

    # -- the Table 1 reservation-management interface -------------------------
    def make_reservation(self, vault_loid: LOID, class_loid: LOID,
                         rtype: ReservationType, now: float,
                         start_time: float = INSTANTANEOUS,
                         duration: float = 3600.0,
                         timeout: float = 60.0) -> ReservationToken:
        """Grant and sign a reservation, or raise ReservationDeniedError."""
        if duration <= 0:
            raise ReservationDeniedError("non-positive duration")
        if start_time != INSTANTANEOUS and start_time < now:
            raise ReservationDeniedError(
                f"start_time {start_time} is in the past (now={now})")
        probe = ReservationToken(
            token_id=next(self._ids), host_loid=self.host_loid,
            vault_loid=vault_loid, class_loid=class_loid, rtype=rtype,
            start_time=start_time, duration=duration, timeout=timeout,
            issued_at=now)
        if not self._admissible(probe, now):
            self.denials += 1
            raise ReservationDeniedError(
                f"host {self.host_loid}: window {probe.window()} "
                f"conflicts under type {rtype}")
        token = probe.signed(self._secret)
        self._entries[token.token_id] = _Entry(token)
        self.grants += 1
        return token

    def check_reservation(self, token: ReservationToken, now: float) -> bool:
        """Is this token one of ours, live, and currently honorable?"""
        entry = self._entries.get(token.token_id)
        if entry is None or entry.cancelled:
            return False
        if not token.verify(self._secret):
            return False
        if entry.token != token:
            return False  # altered fields with a stale signature
        if entry.expired(now):
            return False
        if not token.rtype.reuse and entry.redeemed > 0:
            return False
        start, end = token.window()
        if not token.instantaneous and now < start:
            return False  # too early to redeem a future reservation
        return True

    def timed_out(self, token: ReservationToken, now: float) -> bool:
        """True when an instantaneous grant expired unconfirmed — the
        reservation-timeout case the observability layer counts apart
        from ordinary denials."""
        entry = self._entries.get(token.token_id)
        if entry is None or entry.cancelled or entry.confirmed:
            return False
        tok = entry.token
        return (tok.instantaneous and tok.timeout > 0
                and now > tok.issued_at + tok.timeout)

    def redeem(self, token: ReservationToken, now: float) -> None:
        """Consume the token for one StartObject (implicit confirmation)."""
        if not self.check_reservation(token, now):
            raise InvalidReservationError(
                f"token {token.token_id} is not redeemable on "
                f"{self.host_loid}")
        entry = self._entries[token.token_id]
        entry.redeemed += 1
        entry.confirmed = True

    def cancel_reservation(self, token: ReservationToken, now: float) -> None:
        entry = self._entries.get(token.token_id)
        if entry is None or not token.verify(self._secret):
            raise InvalidReservationError(
                f"cannot cancel unknown/forged token {token.token_id}")
        if not entry.cancelled:
            entry.cancelled = True
            self.cancellations += 1

    # -- bookkeeping ------------------------------------------------------------
    def live_count(self, now: float) -> int:
        return len(self._live_entries(now))

    def active_at(self, t: float, now: float) -> int:
        """Live reservations whose window covers instant ``t``."""
        return sum(1 for e in self._live_entries(now)
                   if e.token.window()[0] <= t < e.token.window()[1])

    def pending_count(self, now: float) -> int:
        """Live grants not yet presented to any StartObject call.

        These are outstanding promises of future capacity — the queue the
        admission controller bounds."""
        return sum(1 for e in self._live_entries(now) if e.redeemed == 0)

    def purge(self, now: float) -> int:
        """Drop expired/cancelled entries; returns the number removed."""
        dead = [tid for tid, e in self._entries.items()
                if e.cancelled or e.expired(now)]
        for tid in dead:
            del self._entries[tid]
        return len(dead)

    def __len__(self) -> int:
        return len(self._entries)
