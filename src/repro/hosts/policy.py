"""Local placement policies — site autonomy.

"Scheduling in Legion is never of a dictatorial nature; requests are made of
resource guardians, who have final authority over what requests are honored"
(paper section 3).  Every Host consults its policy before granting a
reservation or starting an object.  The paper's examples of exported policy
information (section 3.1) are realized here: refusing requests from specific
domains, time-of-day willingness, and per-CPU-cycle pricing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..naming.loid import LOID

__all__ = [
    "PolicyDecision",
    "PlacementPolicy",
    "AcceptAll",
    "DomainBlacklist",
    "TimeOfDayWindow",
    "LoadCeiling",
    "PriceFloor",
    "CompositePolicy",
]


@dataclass(frozen=True)
class PolicyDecision:
    allowed: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.allowed


ALLOW = PolicyDecision(True)


@dataclass(frozen=True)
class PlacementRequest:
    """What the host knows about an incoming placement request."""

    class_loid: Optional[LOID] = None
    requester_domain: str = ""
    offered_price: float = 0.0


class PlacementPolicy:
    """Interface: decide whether a request may proceed on ``host`` now."""

    def decide(self, host, request: PlacementRequest,
               now: float) -> PolicyDecision:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class AcceptAll(PlacementPolicy):
    """The permissive default."""

    def decide(self, host, request: PlacementRequest,
               now: float) -> PolicyDecision:
        return ALLOW


class DomainBlacklist(PlacementPolicy):
    """Refuse object-instantiation requests from listed domains."""

    def __init__(self, refused_domains: Sequence[str]):
        self.refused = frozenset(refused_domains)

    def decide(self, host, request: PlacementRequest,
               now: float) -> PolicyDecision:
        if request.requester_domain in self.refused:
            return PolicyDecision(
                False, f"domain {request.requester_domain!r} refused")
        return ALLOW

    def describe(self) -> str:
        return f"DomainBlacklist({sorted(self.refused)})"


class TimeOfDayWindow(PlacementPolicy):
    """Accept extra jobs only during an allowed window of the (virtual) day.

    The day length defaults to 86400 simulated seconds; the window may wrap
    midnight (e.g. accept 18:00-08:00 — a workstation free only off-hours).
    """

    def __init__(self, open_hour: float, close_hour: float,
                 day_seconds: float = 86400.0):
        self.open_hour = open_hour % 24.0
        self.close_hour = close_hour % 24.0
        self.day_seconds = day_seconds

    def decide(self, host, request: PlacementRequest,
               now: float) -> PolicyDecision:
        hour = (now % self.day_seconds) / (self.day_seconds / 24.0)
        if self.open_hour <= self.close_hour:
            ok = self.open_hour <= hour < self.close_hour
        else:  # wraps midnight
            ok = hour >= self.open_hour or hour < self.close_hour
        if not ok:
            return PolicyDecision(
                False, f"outside acceptance window "
                       f"[{self.open_hour}, {self.close_hour})h")
        return ALLOW


class LoadCeiling(PlacementPolicy):
    """Refuse new work while the machine's load average exceeds a ceiling."""

    def __init__(self, max_load: float):
        self.max_load = max_load

    def decide(self, host, request: PlacementRequest,
               now: float) -> PolicyDecision:
        load = host.machine.load_average
        if load > self.max_load:
            return PolicyDecision(
                False, f"load {load:.2f} > ceiling {self.max_load}")
        return ALLOW


class PriceFloor(PlacementPolicy):
    """Require the requester to meet the host's price per CPU-second."""

    def __init__(self, price: float):
        self.price = price

    def decide(self, host, request: PlacementRequest,
               now: float) -> PolicyDecision:
        if request.offered_price < self.price:
            return PolicyDecision(
                False, f"offered {request.offered_price} < price "
                       f"{self.price}")
        return ALLOW


class CompositePolicy(PlacementPolicy):
    """All sub-policies must allow."""

    def __init__(self, policies: Sequence[PlacementPolicy]):
        self.policies: List[PlacementPolicy] = list(policies)

    def decide(self, host, request: PlacementRequest,
               now: float) -> PolicyDecision:
        for policy in self.policies:
            decision = policy.decide(host, request, now)
            if not decision:
                return decision
        return ALLOW

    def describe(self) -> str:
        return " & ".join(p.describe() for p in self.policies)
