"""Host Objects: machine guardians, reservations, placement policies, and
the simulated machines they arbitrate."""

from .batch_host import BatchQueueHost
from .host_object import HostObject, PlacedObject, StartResult
from .machine import LoadWalk, MachineSpec, SimJob, SimMachine
from .policy import (
    AcceptAll,
    CompositePolicy,
    DomainBlacklist,
    LoadCeiling,
    PlacementPolicy,
    PolicyDecision,
    PriceFloor,
    TimeOfDayWindow,
)
from .reservations import (
    ALL_TYPES,
    INSTANTANEOUS,
    ONE_SHOT_SPACE,
    ONE_SHOT_TIME,
    REUSABLE_SPACE,
    REUSABLE_TIME,
    ReservationTable,
    ReservationToken,
    ReservationType,
)
from .unix_host import UnixHost

__all__ = [
    "HostObject", "UnixHost", "BatchQueueHost", "StartResult", "PlacedObject",
    "SimMachine", "MachineSpec", "SimJob", "LoadWalk",
    "ReservationType", "ReservationToken", "ReservationTable",
    "ONE_SHOT_SPACE", "REUSABLE_SPACE", "ONE_SHOT_TIME", "REUSABLE_TIME",
    "ALL_TYPES", "INSTANTANEOUS",
    "PlacementPolicy", "PolicyDecision", "AcceptAll", "DomainBlacklist",
    "TimeOfDayWindow", "LoadCeiling", "PriceFloor", "CompositePolicy",
]
