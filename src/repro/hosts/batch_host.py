"""Batch Queue Host Objects — mediators between Legion and queue systems.

Paper section 3.1: "most batch processing systems do not understand
reservations, and so our basic Batch Queue Host maintains reservations in a
fashion similar to the Unix Host Object.  A Batch Queue Host for a system
that does support reservations, such as the Maui Scheduler, could take
advantage of the underlying facilities and pass the job of managing
reservations through to the queuing system."

Both modes are implemented:

* wrapping a :class:`~repro.queues.fcfs.FCFSQueue` or
  :class:`~repro.queues.condor.CondorPool` (no native reservations), the
  host keeps the token ledger itself and submission order provides only
  best-effort service — "our real ability to coordinate large applications
  running across multiple queuing systems will be limited by the
  functionality of the underlying queuing system";
* wrapping a :class:`~repro.queues.backfill.BackfillQueue`, each Legion
  reservation is backed by a native advance reservation, and StartObject
  claims that window for immediate execution.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ObjectStateError, ReservationDeniedError
from ..naming.loid import LOID
from ..objects.base import LegionObject
from ..queues.backfill import AdvanceReservation, BackfillQueue
from ..queues.base import JobState, QueueJob, QueueSystem
from .host_object import HostObject, PlacedObject
from .machine import SimMachine
from .reservations import INSTANTANEOUS, ReservationToken, ReservationType

__all__ = ["BatchQueueHost"]


class BatchQueueHost(HostObject):
    """Host Object fronting a whole queue-managed cluster.

    ``machine`` is the cluster's front-end/login node (it provides the
    network location and the host attribute surface); compute happens on the
    queue system's nodes.
    """

    def __init__(self, loid: LOID, machine: SimMachine, sim, queue: QueueSystem,
                 max_queue_length: int = 1000, **kwargs):
        kwargs.setdefault("slots", max_queue_length)
        # set before super().__init__, which calls reassess()
        self.queue = queue
        self.max_queue_length = max_queue_length
        self._queue_jobs: Dict[LOID, QueueJob] = {}
        self._native_reservations: Dict[int, AdvanceReservation] = {}
        super().__init__(loid, machine, sim, **kwargs)

    # -- reservations -----------------------------------------------------------
    def _grant_reservation(self, vault_loid: LOID, class_loid: LOID,
                           rtype: ReservationType = None,  # type: ignore[assignment]
                           start_time: float = INSTANTANEOUS,
                           duration: float = 3600.0,
                           timeout: float = 60.0,
                           requester_domain: str = "",
                           offered_price: float = 0.0,
                           now: Optional[float] = None) -> ReservationToken:
        from .reservations import REUSABLE_TIME
        if rtype is None:
            rtype = REUSABLE_TIME
        now = self.sim.now if now is None else now
        if self.queue.queue_length >= self.max_queue_length:
            raise ReservationDeniedError(
                f"host {self.loid}: queue full "
                f"({self.queue.queue_length} jobs)")
        token = super()._grant_reservation(
            vault_loid, class_loid, rtype=rtype, start_time=start_time,
            duration=duration, timeout=timeout,
            requester_domain=requester_domain,
            offered_price=offered_price, now=now)
        if self.queue.supports_reservations:
            # pass-through: back the token with a native advance reservation
            start = now if start_time == INSTANTANEOUS else start_time
            try:
                native = self.queue.reserve(  # type: ignore[attr-defined]
                    nodes=1, start=start, duration=duration)
            except ReservationDeniedError:
                self.reservations.cancel_reservation(token, now)
                raise
            self._native_reservations[token.token_id] = native
        return token

    def cancel_reservation(self, token: ReservationToken,
                           now: Optional[float] = None) -> None:
        super().cancel_reservation(token, now=now)
        native = self._native_reservations.pop(token.token_id, None)
        if native is not None and isinstance(self.queue, BackfillQueue):
            self.queue.release(native)

    # -- execution ----------------------------------------------------------------
    def _execute(self, instance: LegionObject, vault_loid: LOID,
                 now: float) -> PlacedObject:
        work = float(instance.attributes.get("work_units", 1.0))
        memory = float(instance.attributes.get("memory_mb", 32.0))
        estimate = instance.attributes.get("estimated_runtime")
        qjob = QueueJob(
            work=work, nodes=1, memory_mb=memory,
            estimated_runtime=(float(estimate) if estimate is not None
                               else None),
            name=str(instance.loid),
            on_complete=lambda j, o=instance: self._queue_job_finished(o, j))
        self._queue_jobs[instance.loid] = qjob
        self.queue.submit(qjob)
        return PlacedObject(instance=instance, vault_loid=vault_loid,
                            job=None, started_at=now)

    def start_object(self, instance: LegionObject, vault_loid: LOID,
                     reservation_token: Optional[ReservationToken] = None,
                     now: Optional[float] = None):
        result = super().start_object(instance, vault_loid,
                                      reservation_token, now=now)
        if (result.ok and reservation_token is not None
                and reservation_token.token_id in self._native_reservations
                and isinstance(self.queue, BackfillQueue)):
            # claim the native window so the job starts inside it
            native = self._native_reservations.pop(
                reservation_token.token_id)
            qjob = self._queue_jobs.get(instance.loid)
            if qjob is not None and qjob.state == JobState.QUEUED:
                self.queue.claim(native, qjob)
        return result

    def _queue_job_finished(self, instance: LegionObject,
                            qjob: QueueJob) -> None:
        now = self.sim.now
        instance.attributes.set("completed_at", now, now=now)
        self.placed.pop(instance.loid, None)
        self._queue_jobs.pop(instance.loid, None)
        if self.on_object_complete is not None:
            self.on_object_complete(instance, now)

    def kill_object(self, loid: LOID, now: Optional[float] = None) -> None:
        qjob = self._queue_jobs.pop(loid, None)
        if qjob is not None and qjob.state in (JobState.QUEUED,
                                               JobState.RUNNING,
                                               JobState.VACATED):
            self.queue.cancel(qjob)
        self.placed.pop(loid, None)

    def deactivate_object(self, loid: LOID, now: Optional[float] = None):
        now = self.sim.now if now is None else now
        placed = self.placed.pop(loid, None)
        if placed is None:
            raise ObjectStateError(f"{loid} is not placed on {self.loid}")
        qjob = self._queue_jobs.pop(loid, None)
        remaining = 0.0
        if qjob is not None:
            if qjob.state == JobState.RUNNING:
                self.queue.cancel(qjob)
            elif qjob.state == JobState.QUEUED:
                self.queue.cancel(qjob)
            remaining = qjob.remaining_work
        instance = placed.instance
        instance.attributes.set("work_units", remaining, now=now)
        opr = instance.deactivate(now=now)
        return opr, remaining

    # -- attributes -------------------------------------------------------------------
    def reassess(self, now: Optional[float] = None) -> None:
        super().reassess(now=now)
        t = self.sim.now if now is None else now
        self.attributes.update({
            "host_kind": "batch",
            "queue_name": self.queue.name,
            "queue_length": self.queue.queue_length,
            "queue_free_nodes": self.queue.free_nodes,
            "queue_total_nodes": self.queue.total_nodes,
            "queue_supports_reservations":
                self.queue.supports_reservations,
        }, now=t)
