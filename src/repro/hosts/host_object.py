"""Host Objects — the arbiters of machine capability (paper section 3.1).

The resource-management interface (Table 1)::

  Reservation Management   Process Management     Information Reporting
  ----------------------   -------------------    ----------------------
  make_reservation()       startObject()          get_compatible_vaults()
  check_reservation()      killObject()           vault_OK()
  cancel_reservation()     deactivateObject()

plus the attribute database all Legion objects carry: the Host "reassesses
its local state periodically, and repopulates its attributes", and under a
push model "deposit[s] information into its known Collection(s)".

This base class implements the full interface with an internal reservation
table ("the standard Unix Host Object maintains a reservation table in the
Host Object, because the Unix OS has no notion of reservations") — concrete
subclasses (:class:`~repro.hosts.unix_host.UnixHost`,
:class:`~repro.hosts.batch_host.BatchQueueHost`) refine admission and
execution.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import (
    InsufficientResourcesError,
    InvalidReservationError,
    ObjectStateError,
    PlacementPolicyError,
    ReservationDeniedError,
    VaultIncompatibleError,
)
from ..naming.loid import LOID
from ..objects.base import LegionObject
from ..obs.registry import MetricsRegistry
from ..obs.spans import NULL_SPANS
from ..sim.kernel import Simulator
from .machine import SimJob, SimMachine
from .policy import AcceptAll, PlacementPolicy, PlacementRequest
from .reservations import (
    INSTANTANEOUS,
    ReservationTable,
    ReservationToken,
    ReservationType,
    REUSABLE_TIME,
)

__all__ = ["HostObject", "StartResult", "PlacedObject"]


@dataclass
class StartResult:
    """Outcome of startObject (success/failure code, protocol step 10)."""

    ok: bool
    reason: str = ""
    loids: List[LOID] = field(default_factory=list)


@dataclass
class PlacedObject:
    """Bookkeeping for one object running on this host."""

    instance: LegionObject
    vault_loid: LOID
    job: Optional[SimJob] = None
    started_at: float = 0.0


class HostObject(LegionObject):
    """Guardian object for one machine."""

    def __init__(self, loid: LOID, machine: SimMachine, sim: Simulator,
                 compatible_vaults: Optional[List[LOID]] = None,
                 policy: Optional[PlacementPolicy] = None,
                 slots: int = 0,
                 price_per_cpu_second: float = 0.0,
                 reassess_interval: float = 30.0,
                 metrics: Optional[MetricsRegistry] = None):
        super().__init__(loid)
        self.machine = machine
        self.sim = sim
        # usually replaced by the Metasystem's shared registry at wiring
        # time (instruments are looked up per call, so rebinding is safe)
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry(lambda: sim.now))
        #: span tracer (wired by the Metasystem; inert by default)
        self.spans = NULL_SPANS
        self.policy = policy or AcceptAll()
        self.slots = slots or max(2 * machine.spec.cpus, 2)
        self.price = price_per_cpu_second
        self._compatible_vaults: List[LOID] = list(compatible_vaults or [])
        self.reservations = ReservationTable(
            loid, secret=os.urandom(16), slots=self.slots)
        #: opt-in load-aware admission control (duck-typed; see
        #: repro.guardrails.admission.AdmissionController)
        self.admission = None
        self.placed: Dict[LOID, PlacedObject] = {}
        self.reassess_interval = reassess_interval
        self._push_targets: List[Callable[["HostObject", float], None]] = []
        self.on_object_complete: Optional[
            Callable[[LegionObject, float], None]] = None
        #: accounting hook: called with (instance, cycles_consumed) when a
        #: placed object completes, is killed, or is deactivated — the
        #: paper's "amount charged per CPU cycle consumed"
        self.billing: Optional[
            Callable[[LegionObject, float], None]] = None
        self.starts = 0
        self.start_failures = 0
        self.reassessments = 0
        self.reassess(now=sim.now)

    # -- identity / location --------------------------------------------------
    @property
    def location(self):
        return self.machine.location

    @property
    def domain(self) -> str:
        return self.machine.location.domain

    # ==========================================================================
    # Reservation management (Table 1, column 1)
    # ==========================================================================
    def make_reservation(self, vault_loid: LOID, class_loid: LOID,
                         rtype: ReservationType = REUSABLE_TIME,
                         start_time: float = INSTANTANEOUS,
                         duration: float = 3600.0,
                         timeout: float = 60.0,
                         requester_domain: str = "",
                         offered_price: float = 0.0,
                         now: Optional[float] = None) -> ReservationToken:
        """Grant a reservation for future service.

        "When asked for a reservation, the Host is responsible for ensuring
        that the vault is reachable, that sufficient resources are available,
        and that its local placement policy permits instantiating the
        object."

        Grants and denials are reported to the metrics registry; the
        admission logic itself lives in :meth:`_grant_reservation`, which
        subclasses override.
        """
        with self.spans.span_if_active("host.reserve", step="5",
                                       host=str(self.loid),
                                       vault=str(vault_loid)):
            try:
                token = self._grant_reservation(
                    vault_loid, class_loid, rtype=rtype,
                    start_time=start_time, duration=duration,
                    timeout=timeout, requester_domain=requester_domain,
                    offered_price=offered_price, now=now)
            except Exception as exc:
                self.metrics.count("host_reservations_rejected_total",
                                   reason=type(exc).__name__)
                raise
            self.metrics.count("host_reservations_granted_total",
                               rtype=str(token.rtype))
            return token

    def _grant_reservation(self, vault_loid: LOID, class_loid: LOID,
                           rtype: ReservationType = REUSABLE_TIME,
                           start_time: float = INSTANTANEOUS,
                           duration: float = 3600.0,
                           timeout: float = 60.0,
                           requester_domain: str = "",
                           offered_price: float = 0.0,
                           now: Optional[float] = None) -> ReservationToken:
        now = self.sim.now if now is None else now
        if not self.machine.up:
            raise ReservationDeniedError(f"host {self.loid}: machine down")
        if self.admission is not None:
            # load-aware site autonomy: refuse before touching the ledger
            self.admission.check(self, now)
        if not self.vault_ok(vault_loid):
            raise VaultIncompatibleError(
                f"host {self.loid}: vault {vault_loid} not reachable")
        decision = self.policy.decide(
            self, PlacementRequest(class_loid=class_loid,
                                   requester_domain=requester_domain,
                                   offered_price=offered_price), now)
        if not decision:
            raise PlacementPolicyError(
                f"host {self.loid}: policy refused: {decision.reason}")
        if len(self.placed) >= self.slots:
            raise ReservationDeniedError(
                f"host {self.loid}: all {self.slots} slots occupied")
        return self.reservations.make_reservation(
            vault_loid=vault_loid, class_loid=class_loid, rtype=rtype,
            now=now, start_time=start_time, duration=duration,
            timeout=timeout)

    def check_reservation(self, token: ReservationToken,
                          now: Optional[float] = None) -> bool:
        now = self.sim.now if now is None else now
        return self.reservations.check_reservation(token, now)

    def cancel_reservation(self, token: ReservationToken,
                           now: Optional[float] = None) -> None:
        now = self.sim.now if now is None else now
        self.reservations.cancel_reservation(token, now)

    # ==========================================================================
    # Process management (Table 1, column 2)
    # ==========================================================================
    def _admit(self, instance: LegionObject, vault_loid: LOID,
               token: Optional[ReservationToken], now: float) -> None:
        """Common admission checks for startObject."""
        if not self.machine.up:
            raise ObjectStateError(f"host {self.loid}: machine down")
        if not self.vault_ok(vault_loid):
            raise VaultIncompatibleError(
                f"host {self.loid}: vault {vault_loid} not compatible")
        if token is not None:
            if token.host_loid != self.loid:
                raise InvalidReservationError(
                    f"token {token.token_id} was issued by "
                    f"{token.host_loid}, not {self.loid}")
            if token.vault_loid != vault_loid:
                raise InvalidReservationError(
                    f"token {token.token_id} reserves vault "
                    f"{token.vault_loid}, not {vault_loid}")
            if self.reservations.timed_out(token, now):
                self.metrics.count("host_reservation_timeouts_total")
            self.reservations.redeem(token, now)
        else:
            # Un-reserved direct placement (the Class default path) still
            # passes policy.
            decision = self.policy.decide(
                self, PlacementRequest(class_loid=instance.class_loid), now)
            if not decision:
                raise PlacementPolicyError(
                    f"host {self.loid}: policy refused: {decision.reason}")
        if len(self.placed) >= self.slots:
            raise InsufficientResourcesError(
                f"host {self.loid}: all {self.slots} slots occupied")

    def _execute(self, instance: LegionObject, vault_loid: LOID,
                 now: float) -> PlacedObject:
        """Start the instance running on the machine.  Overridable."""
        work = instance.attributes.get("work_units")
        memory = float(instance.attributes.get("memory_mb", 8.0))
        # a tuned implementation does the same job in fewer machine cycles
        speedup = float(instance.attributes.get("impl_speedup", 1.0))
        job: Optional[SimJob] = None
        if work is not None:
            work = float(work) / max(speedup, 1e-9)
            job = SimJob(float(work), memory,
                         on_complete=lambda j, o=instance:
                         self._job_finished(o, j),
                         name=str(instance.loid))
            self.machine.start_job(job)
        placed = PlacedObject(instance=instance, vault_loid=vault_loid,
                              job=job, started_at=now)
        return placed

    def start_object(self, instance: LegionObject, vault_loid: LOID,
                     reservation_token: Optional[ReservationToken] = None,
                     now: Optional[float] = None) -> StartResult:
        """StartObject(): place one object instance on this host.

        Presenting a reservation token implicitly confirms the reservation.
        Failures return a coded :class:`StartResult` rather than raising —
        the Class reports these codes back to the Enactor (steps 10-11).
        """
        now = self.sim.now if now is None else now
        with self.spans.span_if_active("host.start", step="10",
                                       host=str(self.loid)) as sp:
            try:
                self._admit(instance, vault_loid, reservation_token, now)
                placed = self._execute(instance, vault_loid, now)
            except Exception as exc:
                self.start_failures += 1
                self.metrics.count("host_starts_total", ok="false")
                sp.set_attribute("ok", False)
                sp.set_attribute("error", f"{type(exc).__name__}: {exc}")
                sp.set_status("error")
                return StartResult(False,
                                   reason=f"{type(exc).__name__}: {exc}")
            self.placed[instance.loid] = placed
            instance.host_loid = self.loid
            instance.vault_loid = vault_loid
            # quote the metered rate at admission: billing (Ledger.post)
            # charges this price even if the market reprices the host
            # while the job runs — the fare is agreed when service starts
            instance.attributes.set("price_at_start", self.price, now=now)
            self.starts += 1
            self.metrics.count("host_starts_total", ok="true")
            sp.set_attribute("ok", True)
            return StartResult(True, loids=[instance.loid])

    def start_objects(self, instances: List[LegionObject], vault_loid: LOID,
                      reservation_token: Optional[ReservationToken] = None,
                      now: Optional[float] = None) -> StartResult:
        """The multi-create form: "The StartObject function can create one or
        more objects; this is important to support efficient object creation
        for multiprocessor systems."  A reusable token admits the batch; a
        one-shot token admits only a single object."""
        now = self.sim.now if now is None else now
        if (reservation_token is not None
                and not reservation_token.rtype.reuse
                and len(instances) > 1):
            self.start_failures += 1
            return StartResult(
                False, reason="one-shot token cannot start multiple objects")
        started: List[LOID] = []
        for i, instance in enumerate(instances):
            # the token is redeemed on each presentation; reusable tokens
            # allow every object after the first
            tok = reservation_token if (reservation_token is not None
                                        and (i == 0
                                             or reservation_token.rtype.reuse)
                                        ) else None
            result = self.start_object(instance, vault_loid, tok, now=now)
            if not result.ok:
                for loid in started:
                    self.kill_object(loid, now=now)
                return StartResult(False,
                                   reason=f"batch member {i}: {result.reason}")
            started.extend(result.loids)
        return StartResult(True, loids=started)

    def _bill(self, instance: LegionObject, job: Optional[SimJob]) -> None:
        if self.billing is None or job is None:
            return
        cycles = max(0.0, job.work - job.remaining)
        if cycles > 0:
            self.billing(instance, cycles)

    def kill_object(self, loid: LOID, now: Optional[float] = None) -> None:
        """killObject(): hard-stop and discard a placed object."""
        placed = self.placed.pop(loid, None)
        if placed is None:
            return
        if placed.job is not None and not placed.job.done:
            self.machine.remove_job(placed.job)
        self._bill(placed.instance, placed.job)

    def deactivate_object(self, loid: LOID,
                          now: Optional[float] = None):
        """deactivateObject(): stop execution, persist state to an OPR.

        Returns the ``(opr, remaining_work)`` pair; the Monitor/Enactor moves
        the OPR to a (possibly different) Vault and reactivates elsewhere.
        """
        now = self.sim.now if now is None else now
        placed = self.placed.pop(loid, None)
        if placed is None:
            raise ObjectStateError(f"{loid} is not placed on {self.loid}")
        remaining = 0.0
        if placed.job is not None and not placed.job.done:
            remaining = self.machine.remove_job(placed.job)
        self._bill(placed.instance, placed.job)
        instance = placed.instance
        # persist progress so the object resumes, not restarts; convert
        # machine cycles back to implementation-neutral work units
        if placed.job is not None:
            speedup = float(instance.attributes.get("impl_speedup", 1.0))
            instance.attributes.set("work_units", remaining * speedup,
                                    now=now)
        opr = instance.deactivate(now=now)
        return opr, remaining

    def _job_finished(self, instance: LegionObject, job: SimJob) -> None:
        now = self.sim.now
        instance.attributes.set("completed_at", now, now=now)
        self.placed.pop(instance.loid, None)
        self._bill(instance, job)
        if self.on_object_complete is not None:
            self.on_object_complete(instance, now)

    # ==========================================================================
    # Information reporting (Table 1, column 3)
    # ==========================================================================
    def get_compatible_vaults(self) -> List[LOID]:
        return list(self._compatible_vaults)

    def vault_ok(self, vault_loid: LOID) -> bool:
        return vault_loid in self._compatible_vaults

    def add_compatible_vault(self, vault_loid: LOID) -> None:
        if vault_loid not in self._compatible_vaults:
            self._compatible_vaults.append(vault_loid)

    # -- attribute reassessment & push model -----------------------------------
    def reassess(self, now: Optional[float] = None) -> None:
        """Repopulate the attribute database from current machine state,
        poll RGE triggers, and push to known Collections."""
        now = self.sim.now if now is None else now
        spec = self.machine.spec
        self.attributes.update({
            "host_name": self.machine.name,
            "host_arch": spec.arch,
            "host_os_name": spec.os_name,
            "host_os_version": spec.os_version,
            "host_cpus": spec.cpus,
            "host_speed": spec.speed,
            "host_memory_mb": spec.memory_mb,
            "host_available_memory_mb": self.machine.available_memory_mb,
            "host_load": round(self.machine.load_average, 4),
            "host_domain": self.domain,
            "host_slots": self.slots,
            "host_slots_free": max(0, self.slots - len(self.placed)),
            "host_price": self.price,
            "host_up": self.machine.up,
            "host_policy": self.policy.describe(),
            "compatible_vaults": [str(v) for v in self._compatible_vaults],
        }, now=now)
        self.reassessments += 1
        # sweep the reservation ledger so long campaigns don't grow it
        # unboundedly (expired/cancelled entries are dead weight)
        purged = self.reservations.purge(now)
        if purged:
            self.metrics.count("host_reservations_purged_total", purged)
        self.rge.poll(now, host=str(self.loid),
                      load=self.machine.load_average)
        for push in list(self._push_targets):
            push(self, now)

    def add_push_target(self,
                        push: Callable[["HostObject", float], None]) -> None:
        """Register a push-model sink (e.g. a Collection updater)."""
        self._push_targets.append(push)

    def start_periodic_reassessment(self) -> None:
        """Begin the periodic reassess cycle on the simulator."""
        def tick():
            if self.machine.up:
                self.reassess()
            self.sim.schedule(self.reassess_interval, tick)
        self.sim.schedule(self.reassess_interval, tick)

    # -- convenience --------------------------------------------------------------
    @property
    def free_slots(self) -> int:
        return max(0, self.slots - len(self.placed))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<{type(self).__name__} {self.loid} on {self.machine.name} "
                f"placed={len(self.placed)}/{self.slots}>")
