"""Simulated physical machines.

A :class:`SimMachine` stands in for the paper's real testbed hosts: it has an
architecture, operating system, CPU count, relative speed, and memory, and it
*executes* placed objects under processor sharing while a stochastic
background load (other users' processes — this was a 1999 shared-workstation
world) competes for cycles.

Processor-sharing execution is exact, not fixed-at-dispatch: on every state
change (job arrival, departure, background-load step) the machine integrates
the work each job completed since the last change and reschedules the next
completion.  Load spikes therefore genuinely slow running objects, which is
what makes Monitor-driven migration (experiment E12) worth anything.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import InsufficientResourcesError, ObjectStateError
from ..net.topology import NetLocation
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry

__all__ = ["MachineSpec", "SimMachine", "SimJob", "LoadWalk"]


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a machine."""

    arch: str = "sparc"
    os_name: str = "SunOS"
    os_version: str = "5.7"
    cpus: int = 1
    speed: float = 1.0         # work units per second per CPU (1.0 = baseline)
    memory_mb: float = 128.0


class SimJob:
    """One unit of placed work executing under processor sharing."""

    _ids = itertools.count()

    def __init__(self, work: float, memory_mb: float,
                 on_complete: Optional[Callable[["SimJob"], None]] = None,
                 name: str = ""):
        if work < 0:
            raise ValueError("job work must be non-negative")
        self.job_id = next(SimJob._ids)
        self.name = name or f"job{self.job_id}"
        self.work = float(work)
        self.remaining = float(work)
        self.memory_mb = float(memory_mb)
        self.on_complete = on_complete
        self.started_at: float = 0.0
        self.finished_at: Optional[float] = None
        self.preempted = False

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SimJob {self.name} rem={self.remaining:.3g}>"


class LoadWalk:
    """Mean-reverting random walk for background load.

    ``L(t+dt) = clip(L + kappa*(mean - L) + sigma*N(0,1), 0, cap)`` stepped
    every ``interval`` seconds.  Occasional spikes (probability
    ``spike_prob`` per step, magnitude ``spike_size``) model another user
    starting a heavy job.
    """

    def __init__(self, mean: float = 0.5, kappa: float = 0.2,
                 sigma: float = 0.15, cap: float = 8.0,
                 interval: float = 10.0,
                 spike_prob: float = 0.0, spike_size: float = 3.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.mean, self.kappa, self.sigma = mean, kappa, sigma
        self.cap, self.interval = cap, interval
        self.spike_prob, self.spike_size = spike_prob, spike_size

    def step(self, rng, current: float) -> float:
        nxt = (current + self.kappa * (self.mean - current)
               + self.sigma * rng.standard_normal())
        if self.spike_prob > 0.0 and rng.random() < self.spike_prob:
            nxt += self.spike_size
        return float(min(max(nxt, 0.0), self.cap))


class SimMachine:
    """A machine in the simulated metasystem."""

    def __init__(self, name: str, spec: MachineSpec, location: NetLocation,
                 sim: Simulator, rngs: RngRegistry,
                 load_walk: Optional[LoadWalk] = None,
                 initial_load: float = 0.0):
        self.name = name
        self.spec = spec
        self.location = location
        self.sim = sim
        self._rng = rngs.stream("machine", name, "load")
        self.load_walk = load_walk
        self.background_load = float(initial_load)
        self.up = True
        self.jobs: Dict[int, SimJob] = {}
        self._last_advance = sim.now
        self._epoch = 0  # invalidates stale completion callbacks
        self._load_epoch = 0  # invalidates stale load-step chains
        self.completed_jobs = 0
        self.total_work_done = 0.0
        self.failures = 0
        if load_walk is not None:
            self._schedule_load_step()

    # -- background load process ------------------------------------------------
    def _schedule_load_step(self) -> None:
        epoch = self._load_epoch
        self.sim.schedule(self.load_walk.interval,
                          lambda: self._load_step(epoch))

    def _load_step(self, epoch: Optional[int] = None) -> None:
        if epoch is not None and epoch != self._load_epoch:
            return  # stale chain from before a fail/recover cycle
        if not self.up:
            return
        self._advance()
        self.background_load = self.load_walk.step(
            self._rng, self.background_load)
        self._reschedule()
        self._schedule_load_step()

    def set_background_load(self, value: float) -> None:
        """Force the background load (used by experiments to inject spikes)."""
        self._advance()
        self.background_load = max(0.0, float(value))
        self._reschedule()

    # -- derived state ----------------------------------------------------------
    @property
    def load_average(self) -> float:
        """Runnable-process count analogue: background + placed jobs."""
        return self.background_load + len(self.jobs)

    @property
    def available_memory_mb(self) -> float:
        used = sum(j.memory_mb for j in self.jobs.values())
        return max(0.0, self.spec.memory_mb - used)

    def per_job_rate(self) -> float:
        """Work units/second each running job currently receives.

        ``cpus`` are shared by (jobs + background load) runnable entities; a
        job's share is capped at one full CPU.
        """
        if not self.up:
            return 0.0
        competitors = len(self.jobs) + self.background_load
        if competitors <= 0:
            return self.spec.speed
        share = min(1.0, self.spec.cpus / competitors)
        return self.spec.speed * share

    # -- processor-sharing engine -------------------------------------------------
    def _advance(self) -> None:
        """Integrate work done since the last state change."""
        now = self.sim.now
        dt = now - self._last_advance
        if dt > 0 and self.jobs:
            rate = self.per_job_rate()
            for job in self.jobs.values():
                credit = min(job.remaining, rate * dt)
                job.remaining -= credit
                self.total_work_done += credit
        self._last_advance = now

    def _reschedule(self) -> None:
        """Schedule the completion of the job that will finish first."""
        self._epoch += 1
        if not self.jobs or not self.up:
            return
        rate = self.per_job_rate()
        if rate <= 0.0:
            return
        soonest = min(self.jobs.values(), key=lambda j: j.remaining)
        delay = soonest.remaining / rate
        epoch = self._epoch
        self.sim.schedule(delay, lambda: self._maybe_complete(epoch))

    def _maybe_complete(self, epoch: int) -> None:
        if epoch != self._epoch or not self.up:
            return
        self._advance()
        finished = [j for j in self.jobs.values() if j.remaining <= 1e-9]
        for job in finished:
            del self.jobs[job.job_id]
            job.remaining = 0.0
            job.finished_at = self.sim.now
            self.completed_jobs += 1
        self._reschedule()
        for job in finished:
            if job.on_complete is not None:
                job.on_complete(job)

    # -- job management -------------------------------------------------------------
    def start_job(self, job: SimJob) -> SimJob:
        """Admit a job; raises if the machine is down or out of memory."""
        if not self.up:
            raise ObjectStateError(f"machine {self.name} is down")
        if job.memory_mb > self.available_memory_mb:
            raise InsufficientResourcesError(
                f"machine {self.name}: need {job.memory_mb} MB, "
                f"have {self.available_memory_mb:.1f} MB")
        self._advance()
        job.started_at = self.sim.now
        self.jobs[job.job_id] = job
        self._reschedule()
        return job

    def add_work(self, job: SimJob, extra: float) -> None:
        """Extend a running job's remaining work (e.g. a communication
        penalty charged after placement)."""
        if extra < 0:
            raise ValueError("extra work must be non-negative")
        self._advance()
        if job.job_id in self.jobs:
            job.remaining += float(extra)
            self._reschedule()
        else:
            job.remaining += float(extra)

    def remove_job(self, job: SimJob) -> float:
        """Preempt/remove a job, returning its remaining work."""
        self._advance()
        if job.job_id in self.jobs:
            del self.jobs[job.job_id]
            job.preempted = True
            self._reschedule()
        return job.remaining

    # -- failure ----------------------------------------------------------------------
    def fail(self) -> List[SimJob]:
        """Crash: all running jobs are lost (returned for bookkeeping).

        Idempotent: failing a machine that is already down returns an
        empty list, so callers summing lost jobs never double-count.
        """
        if not self.up:
            return []
        self._advance()
        lost = list(self.jobs.values())
        for job in lost:
            job.preempted = True
        self.jobs.clear()
        self.up = False
        self._epoch += 1
        self._load_epoch += 1  # orphan any pending load step
        self.failures += 1
        return lost

    def recover(self) -> None:
        """Bring the machine back up.  Idempotent: recovering an up
        machine is a no-op (in particular it never seeds a second
        background-load chain)."""
        if self.up:
            return
        self.up = True
        self._last_advance = self.sim.now
        self._load_epoch += 1
        if self.load_walk is not None:
            self._schedule_load_step()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<SimMachine {self.name} {self.spec.arch}/"
                f"{self.spec.os_name} load={self.load_average:.2f}>")
