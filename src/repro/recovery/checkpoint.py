"""Checkpoint/restore for the service tier.

OAR's restart property: the resource-management brain can be torn down
and rebuilt from its durable state while the physical cluster keeps
running.  The equivalent here: :func:`capture_checkpoint` serializes
everything the *service tier* owns — the request journal, the cumulative
gateway/queue/pool/supervisor/lease counters, plus audit snapshots of
the budget/breaker/health state the tier depends on — as pure JSON;
:meth:`Metasystem.stop_service` tears the tier down; and
:func:`restore_service` rebuilds a fresh gateway/queue/pool/supervisor
from the checkpoint and replays the journal into the exact request
registry the old tier held.

Determinism contract (what makes a restored run *byte-identical* to an
uninterrupted one):

* capture is only legal at a **safe point** — queue empty, every
  request terminal, no active leases, every worker alive and
  idle-polling on its grid (:attr:`WorkerPool.quiescent`); otherwise
  :class:`~repro.errors.RecoveryError`;
* workers and the Supervisor poll on **absolute time grids**
  (:func:`~repro.sim.kernel.grid_delay`), so restored daemons re-enter
  the very schedule their predecessors kept;
* RNG streams are **cached by name** in the
  :class:`~repro.sim.rng.RngRegistry`, so a restored worker's
  ``("service", "sched", i)`` scheduler stream resumes mid-sequence —
  nothing is reseeded and nothing is drawn during restore;
* recovery-enabled schedulers pin ``viable_cache=False``: a freshly
  restored scheduler has a cold cache, and a warm-vs-cold cache changes
  *virtual* timing (fewer Collection round-trips), which would diverge
  the two runs.

The world-side state (hosts, network, Collection, breakers, budgets)
persists through the tier teardown — the audit snapshots exist so
restore can *verify* the world is byte-for-byte the one the checkpoint
was cut against.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Dict, List, Optional

from ..errors import RecoveryError
from .config import RecoveryConfig
from .journal import RequestJournal

__all__ = ["ServiceCheckpoint", "capture_checkpoint", "restore_service"]


class ServiceCheckpoint:
    """A pure-JSON snapshot of the service tier at a safe point."""

    __slots__ = ("captured_at", "config", "recovery", "app_name",
                 "journal", "gateway", "queue", "pool", "supervisor",
                 "leases", "audit")

    def __init__(self, captured_at: float, config: Dict[str, Any],
                 recovery: Dict[str, Any], app_name: str,
                 journal: List[Dict[str, Any]], gateway: Dict[str, Any],
                 queue: Dict[str, Any], pool: Dict[str, Any],
                 supervisor: Dict[str, Any], leases: Dict[str, Any],
                 audit: Dict[str, Any]):
        self.captured_at = captured_at
        self.config = config
        self.recovery = recovery
        self.app_name = app_name
        self.journal = journal
        self.gateway = gateway
        self.queue = queue
        self.pool = pool
        self.supervisor = supervisor
        self.leases = leases
        self.audit = audit

    def to_dict(self) -> Dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ServiceCheckpoint":
        return cls(**{slot: doc[slot] for slot in cls.__slots__})

    @classmethod
    def from_json(cls, blob: str) -> "ServiceCheckpoint":
        return cls.from_dict(json.loads(blob))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ServiceCheckpoint t={self.captured_at:.1f} "
                f"journal={len(self.journal)}>")


def _audit_snapshot(meta: Any) -> Dict[str, Any]:
    """Budget/breaker/health state the tier depends on (world-side; it
    survives the teardown — captured so restore can verify it did)."""
    audit: Dict[str, Any] = {"breakers": None, "health": None,
                             "budgets": None}
    breakers = getattr(meta.transport, "breakers", None)
    if breakers is not None:
        audit["breakers"] = breakers.snapshot()
    if meta.guardrails is not None:
        audit["health"] = meta.guardrails.monitor.snapshot()
    if meta.economy is not None:
        audit["budgets"] = meta.economy.budgets.to_dict()
    return audit


def quiescence_blockers(meta: Any) -> List[str]:
    """Why a checkpoint can NOT be captured right now ([] = safe)."""
    suite = meta.service
    if suite is None:
        return ["no live service tier"]
    if suite.journal is None or suite.leases is None:
        return ["service tier started without the recovery layer"]
    blockers: List[str] = []
    if suite.queue.depth:
        blockers.append(f"queue depth {suite.queue.depth}")
    pending = sum(1 for r in suite.gateway.requests.values()
                  if not r.terminal)
    if pending:
        blockers.append(f"{pending} non-terminal request(s)")
    if suite.leases.active:
        blockers.append(f"{len(suite.leases.active)} active lease(s)")
    if suite.leases.late_effects:
        blockers.append(f"{len(suite.leases.late_effects)} unreaped "
                        f"late-effect lease(s)")
    if not suite.pool.quiescent:
        blockers.append("worker pool not idle "
                        f"(dead={suite.pool.dead_workers})")
    return blockers


def capture_checkpoint(meta: Any) -> ServiceCheckpoint:
    """Snapshot the service tier at a safe point (else RecoveryError)."""
    blockers = quiescence_blockers(meta)
    if blockers:
        raise RecoveryError(
            "checkpoint refused — not at a safe point: "
            + "; ".join(blockers))
    suite = meta.service
    return ServiceCheckpoint(
        captured_at=meta.now,
        config=asdict(suite.config),
        recovery=suite.recovery.to_dict(),
        app_name=suite.app.name,
        journal=suite.journal.to_dicts(),
        gateway={"submitted": suite.gateway.submitted,
                 "admission_rejections": suite.gateway.admission.rejections},
        queue=suite.queue.counters(),
        pool=suite.pool.counters(),
        supervisor=suite.supervisor.counters(),
        leases=suite.leases.counters(),
        audit=_audit_snapshot(meta))


def restore_service(meta: Any, checkpoint: ServiceCheckpoint,
                    app: Any) -> Any:
    """Rebuild the service tier from a checkpoint and continue.

    ``app`` is the live Class object requests place instances of — it is
    world-side state that survived the teardown (restore never creates a
    new class: that would both duplicate the world object and perturb
    seeded streams).  Returns the new
    :class:`~repro.service.ServiceSuite`; after this call the sim
    continues byte-identically to a run that never checkpointed.
    """
    from ..service.config import ServiceConfig
    if meta.service is not None:
        raise RecoveryError(
            "cannot restore: a service tier is still running "
            "(call Metasystem.stop_service() first)")
    if app.name != checkpoint.app_name:
        raise RecoveryError(
            f"checkpoint was cut against app {checkpoint.app_name!r}, "
            f"got {app.name!r}")
    audit = _audit_snapshot(meta)
    if json.dumps(audit, sort_keys=True) != json.dumps(checkpoint.audit,
                                                       sort_keys=True):
        raise RecoveryError(
            "world state diverged from the checkpoint's "
            "budget/breaker/health audit — restore would not be "
            "deterministic")
    config = ServiceConfig(**checkpoint.config)
    recovery = RecoveryConfig(**checkpoint.recovery)
    suite = meta.start_service(config=config, app=app, recovery=recovery)
    # replay the journal into the exact request registry the old tier held
    suite.journal.load(checkpoint.journal)
    requests, live, counters = RequestJournal.replay(suite.journal.entries)
    if live:  # pragma: no cover — quiescence guarantees an empty queue
        raise RecoveryError(
            f"checkpoint journal replays {len(live)} live queue "
            f"entr(ies); capture was not at a safe point")
    suite.gateway.requests = requests
    suite.gateway.submitted = counters["submitted"]
    suite.gateway.admission.rejections = counters["admission_rejections"]
    # continue every cumulative counter where the old tier left off
    suite.queue.restore_counters(checkpoint.queue)
    suite.pool.restore_counters(checkpoint.pool)
    suite.supervisor.restore_counters(checkpoint.supervisor)
    suite.leases.restore_counters(checkpoint.leases)
    return suite
