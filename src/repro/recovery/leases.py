"""Lease-based request ownership.

A worker that pops a request claims it under a TTL lease; while the
worker lives, a heartbeat (scheduled by the pool) renews the lease every
``heartbeat_interval``.  A crashed worker stops renewing, the lease
expires, and the :class:`~repro.recovery.supervisor.Supervisor` recovers
the orphan.  The table is the single authority on ownership:

* **≤ 1 active lease per request** — :meth:`grant` raises
  :class:`~repro.errors.RecoveryError` on a double grant, and the full
  interval history is kept so the hypothesis property in
  ``tests/test_recovery.py`` can audit non-overlap after the fact;
* **effects travel with the lease** — a worker that notices it was
  killed *after* ``Scheduler.run`` returned deposits the
  half-made placement (the :class:`SchedulingOutcome`) on its lease, so
  the Supervisor can destroy those zombie instances before re-enqueuing
  (no duplicate placements).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import RecoveryError

__all__ = ["Lease", "LeaseTable"]

RELEASED = "released"
EXPIRED = "expired"


class Lease:
    """One worker's claim on one request."""

    __slots__ = ("request_id", "worker", "granted_at", "expires_at",
                 "renewals", "effects")

    def __init__(self, request_id: str, worker: int, granted_at: float,
                 expires_at: float):
        self.request_id = request_id
        self.worker = worker
        self.granted_at = granted_at
        self.expires_at = expires_at
        self.renewals = 0
        #: a SchedulingOutcome deposited by a worker that died after
        #: enacting a placement it could no longer report
        self.effects: Any = None

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Lease {self.request_id} worker={self.worker} "
                f"expires={self.expires_at:.1f}>")


class LeaseTable:
    """Active leases plus the full ownership-interval history."""

    def __init__(self, ttl: float, metrics: Any = None):
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.ttl = float(ttl)
        self.metrics = metrics
        self.active: Dict[str, Lease] = {}
        #: closed ownership intervals:
        #: (request_id, worker, granted_at, ended_at, how)
        self.history: List[tuple] = []
        self.grants = 0
        self.renewals = 0
        self.releases = 0
        self.expirations = 0
        #: leases whose worker deposited effects *after* the Supervisor
        #: had already expired them (Scheduler.run outlived the TTL);
        #: drained and reaped at the Supervisor's next scan
        self.late_effects: List[Lease] = []
        if metrics is not None:
            metrics.gauge_fn("recovery_active_leases",
                             lambda: float(len(self.active)),
                             help="requests currently owned by a worker "
                                  "lease")

    # -- lifecycle ----------------------------------------------------------
    def grant(self, request_id: str, worker: int, now: float) -> Lease:
        if request_id in self.active:
            raise RecoveryError(
                f"request {request_id} is already leased to worker "
                f"{self.active[request_id].worker}")
        lease = Lease(request_id, worker, now, now + self.ttl)
        self.active[request_id] = lease
        self.grants += 1
        if self.metrics is not None:
            self.metrics.count("recovery_lease_grants_total")
        return lease

    def renew(self, lease: Lease, now: float) -> None:
        """Heartbeat: extend the lease (no-op unless still the active
        lease for its request — a stale beat must not resurrect one)."""
        if self.active.get(lease.request_id) is not lease:
            return
        lease.expires_at = now + self.ttl
        lease.renewals += 1
        self.renewals += 1
        if self.metrics is not None:
            self.metrics.count("recovery_heartbeats_total")

    def release(self, lease: Lease, now: float) -> None:
        """The worker finished the request and gives up ownership."""
        if self.active.get(lease.request_id) is not lease:
            return
        del self.active[lease.request_id]
        self.releases += 1
        self.history.append((lease.request_id, lease.worker,
                             lease.granted_at, now, RELEASED))

    def expire(self, lease: Lease, now: float) -> None:
        """The Supervisor retires an expired lease (worker presumed
        dead); ownership interval closes at the expiry time."""
        if self.active.get(lease.request_id) is not lease:
            return
        del self.active[lease.request_id]
        self.expirations += 1
        if self.metrics is not None:
            self.metrics.count("recovery_lease_expirations_total")
        self.history.append((lease.request_id, lease.worker,
                             lease.granted_at, lease.expires_at, EXPIRED))

    def deposit_effects(self, lease: Lease, outcome: Any) -> None:
        """A dying worker hands its enacted-but-unreported placement to
        whoever will reap it.  While the lease is still active the
        Supervisor reaps at expiry; if the lease already expired (the
        placement outlived the TTL inside ``Scheduler.run``), the lease
        joins :attr:`late_effects` for the next scan — either way the
        zombie instances are destroyed exactly once."""
        lease.effects = outcome
        if not self.is_active(lease):
            self.late_effects.append(lease)

    # -- queries ------------------------------------------------------------
    def is_active(self, lease: Lease) -> bool:
        return self.active.get(lease.request_id) is lease

    def expired(self, now: float) -> List[Lease]:
        """Active leases whose TTL has lapsed, in request-id order."""
        return [lease for _rid, lease in sorted(self.active.items())
                if lease.expires_at <= now]

    def intervals(self) -> List[tuple]:
        """Closed + open ownership intervals (for the overlap audit)."""
        out = list(self.history)
        for rid, lease in sorted(self.active.items()):
            out.append((rid, lease.worker, lease.granted_at, None, "open"))
        return out

    # -- checkpoint ---------------------------------------------------------
    def counters(self) -> Dict[str, Any]:
        return {"grants": self.grants, "renewals": self.renewals,
                "releases": self.releases,
                "expirations": self.expirations,
                "history": [list(h) for h in self.history]}

    def restore_counters(self, doc: Dict[str, Any]) -> None:
        self.grants = doc["grants"]
        self.renewals = doc["renewals"]
        self.releases = doc["releases"]
        self.expirations = doc["expirations"]
        self.history = [tuple(h) for h in doc["history"]]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<LeaseTable active={len(self.active)} "
                f"grants={self.grants} expirations={self.expirations}>")
