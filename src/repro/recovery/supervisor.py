"""Supervisor: the daemon that turns worker crashes into recoveries.

Scans the :class:`~repro.recovery.leases.LeaseTable` every
``scan_interval`` virtual seconds (on an absolute time grid, so a
restored Supervisor stays in phase with the one it replaces).  For each
expired lease it:

1. retires the lease and journals the ``expire`` transition;
2. **reaps zombie effects** — if the dead worker had already enacted the
   placement (the outcome was deposited on the lease), every created
   instance is destroyed through the Class object, releasing its host
   slot; this is what keeps the duplicate-placement count at zero
   (reservations that never enacted were already rolled back by the
   Scheduler's own failure path);
3. **re-enqueues the orphan exactly once** per expiry through
   :meth:`~repro.service.gateway.RequestGateway.requeue` — unless the
   user cancelled it while it was stranded, in which case it finishes
   CANCELLED;
4. records a ``recovery.orphan`` span from lease expiry to requeue and
   the orphan-recovery latency sample the gameday report aggregates.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..sim.kernel import grid_delay

__all__ = ["Supervisor"]


class Supervisor:
    """Expired-lease scanner + orphan recovery daemon."""

    def __init__(self, sim: Any, gateway: Any, leases: Any, journal: Any,
                 app: Any, scan_interval: float, metrics: Any = None,
                 spans: Any = None):
        if scan_interval <= 0:
            raise ValueError("scan_interval must be positive")
        self.sim = sim
        self.gateway = gateway
        self.leases = leases
        self.journal = journal
        self.app = app
        self.scan_interval = float(scan_interval)
        self.metrics = metrics
        self.spans = spans
        self.scans = 0
        self.recovered = 0
        self.cancelled_on_recovery = 0
        self.duplicates_averted = 0
        #: expiry→requeue latency samples (virtual seconds)
        self.orphan_latencies: List[float] = []
        self._started = False
        self._stopped = False

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "Supervisor":
        if self._started:
            return self
        self._started = True
        self._stopped = False
        self.sim.schedule(grid_delay(self.sim.now, self.scan_interval),
                          self._tick)
        return self

    def stop(self) -> None:
        self._stopped = True

    # -- the scan -----------------------------------------------------------
    def _tick(self) -> None:
        if self._stopped:
            return
        now = self.sim.now
        self.scans += 1
        # reap placements whose effects arrived after their lease had
        # already been expired (Scheduler.run outlived the TTL)
        while self.leases.late_effects:
            self._reap(self.leases.late_effects.pop(0), now)
        for lease in self.leases.expired(now):
            self._recover(lease, now)
        self.sim.schedule(grid_delay(now, self.scan_interval), self._tick)

    def _recover(self, lease: Any, now: float) -> None:
        self.leases.expire(lease, now)
        if self.journal is not None:
            self.journal.record("expire", lease.request_id,
                                worker=lease.worker)
        reaped = self._reap(lease, now)
        request = self.gateway.requests.get(lease.request_id)
        if request is None or request.terminal:  # pragma: no cover
            return  # nothing left to recover (defensive)
        if request.cancel_requested:
            self.cancelled_on_recovery += 1
            self.gateway.requeue(request)  # honours the flag: CANCELLED
        else:
            self.gateway.requeue(
                request, reason=f"lease expired on worker {lease.worker}")
            self.recovered += 1
            latency = now - lease.expires_at
            self.orphan_latencies.append(latency)
            if self.metrics is not None:
                self.metrics.count("recovery_orphans_recovered_total")
                self.metrics.observe("recovery_orphan_latency_seconds",
                                     latency)
        if self.spans is not None:
            self.spans.record_span(
                "recovery.orphan", start=lease.expires_at, end=now,
                request=lease.request_id, worker=lease.worker,
                reaped=reaped,
                outcome="cancelled" if request.cancel_requested
                else "requeued")

    def _reap(self, lease: Any, now: float) -> int:
        """Destroy instances a dead worker enacted but never reported."""
        if lease.effects is None:
            return 0
        reaped = 0
        for loid in lease.effects.created:
            if loid in self.app.instances:
                self.app.destroy_instance(loid, now=now)
                reaped += 1
        lease.effects = None
        if reaped:
            self.duplicates_averted += reaped
            if self.metrics is not None:
                self.metrics.count("recovery_duplicates_averted_total",
                                   reaped)
        return reaped

    # -- reporting / checkpoint ---------------------------------------------
    def stats(self) -> Dict[str, Any]:
        lat = self.orphan_latencies
        return {
            "scans": self.scans,
            "recovered": self.recovered,
            "cancelled_on_recovery": self.cancelled_on_recovery,
            "duplicates_averted": self.duplicates_averted,
            "orphan_latency_mean": (sum(lat) / len(lat)) if lat else 0.0,
            "orphan_latency_max": max(lat) if lat else 0.0,
        }

    def counters(self) -> Dict[str, Any]:
        return {
            "scans": self.scans,
            "recovered": self.recovered,
            "cancelled_on_recovery": self.cancelled_on_recovery,
            "duplicates_averted": self.duplicates_averted,
            "orphan_latencies": list(self.orphan_latencies),
        }

    def restore_counters(self, doc: Dict[str, Any]) -> None:
        self.scans = doc["scans"]
        self.recovered = doc["recovered"]
        self.cancelled_on_recovery = doc["cancelled_on_recovery"]
        self.duplicates_averted = doc["duplicates_averted"]
        self.orphan_latencies = list(doc["orphan_latencies"])

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Supervisor recovered={self.recovered} "
                f"averted={self.duplicates_averted} scans={self.scans}>")
