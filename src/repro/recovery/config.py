"""RecoveryConfig: knobs for the service-tier recovery layer.

The three timescales interlock: a worker heartbeats every
``heartbeat_interval`` virtual seconds while it owns a request, each
heartbeat extends the lease to ``now + lease_ttl``, and the Supervisor
scans for expired leases every ``scan_interval``.  A crashed worker
stops heartbeating, so its lease expires at most ``lease_ttl`` after
the last beat and the orphan is detected at most ``scan_interval``
later — worst-case orphan-recovery latency is
``lease_ttl + scan_interval`` (the gameday report measures the actual
distribution).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RecoveryConfig"]


@dataclass(frozen=True)
class RecoveryConfig:
    """Parameters of the journal/lease/supervisor recovery layer."""

    #: lease lifetime: a worker's claim on a request expires this many
    #: virtual seconds after the last heartbeat renewal
    lease_ttl: float = 20.0
    #: how often a live worker renews its lease
    heartbeat_interval: float = 5.0
    #: how often the Supervisor scans for expired leases (scans run on
    #: an absolute time grid so restored supervisors stay in phase)
    scan_interval: float = 5.0

    def __post_init__(self) -> None:
        if self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_interval >= self.lease_ttl:
            raise ValueError(
                "heartbeat_interval must be shorter than lease_ttl "
                "(a live worker must renew before its lease expires)")
        if self.scan_interval <= 0:
            raise ValueError("scan_interval must be positive")

    def to_dict(self) -> dict:
        return {
            "lease_ttl": self.lease_ttl,
            "heartbeat_interval": self.heartbeat_interval,
            "scan_interval": self.scan_interval,
        }
