"""RequestJournal: write-ahead log of every request state transition.

OAR (PAPERS.md) keeps the scheduler's entire state in a durable store so
the scheduler process can be killed and restarted without losing work.
The journal is this reproduction's equivalent: the gateway, queue, and
workers record every transition *before* acting on it, and
:func:`RequestJournal.replay` folds the entries back into the exact
request registry and live queue content — byte-identical to a live
snapshot (:meth:`RequestJournal.snapshot_state`), which is what the
checkpoint/restore path and the replay tests pin.

Event vocabulary (one entry per transition, in admission order):

=================  ==========================================================
``submit``         request minted (``user/count/priority/work``)
``admission_rej``  front-door admission refused it (a ``finish`` follows)
``enqueue``        admitted into the placement queue (live from here)
``defer``          backlog full, re-offer scheduled (``defers`` = count so far)
``claim``          a worker popped it (``worker`` = index)
``attempt``        one ``Scheduler.run`` try (``attempt`` = 1-based number)
``cancel_flag``    cancel arrived after claim; worker/supervisor honours it
``expire``         the owning lease expired (worker crash detected)
``requeue``        Supervisor re-enqueued the orphan (``requeues`` = count)
``finish``         terminal state reached (``state/detail/created``)
=================  ==========================================================

Replay folds events into :class:`~repro.service.request.ServiceRequest`
objects, so ``to_dict()`` equality against the live registry is exact.
Queue *counters* (offered/shed/...) are deliberately not journalled —
they are cumulative statistics, carried by the checkpoint, not state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import RecoveryError
from ..service.request import CANCELLED, DEFERRED, PLACING, QUEUED, \
    ServiceRequest

__all__ = ["JournalEntry", "RequestJournal"]

#: journal event names (kept short; they appear once per transition)
EVENTS = ("submit", "admission_rej", "enqueue", "defer", "claim",
          "attempt", "cancel_flag", "expire", "requeue", "finish")


class JournalEntry:
    """One logged transition."""

    __slots__ = ("seq", "t", "event", "request_id", "data")

    def __init__(self, seq: int, t: float, event: str, request_id: str,
                 data: Dict[str, Any]):
        self.seq = seq
        self.t = t
        self.event = event
        self.request_id = request_id
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "t": self.t, "event": self.event,
                "request_id": self.request_id, "data": dict(self.data)}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "JournalEntry":
        return cls(int(doc["seq"]), float(doc["t"]), str(doc["event"]),
                   str(doc["request_id"]), dict(doc["data"]))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<JournalEntry #{self.seq} t={self.t:.3f} "
                f"{self.event} {self.request_id}>")


class RequestJournal:
    """Append-only write-ahead log for the service tier."""

    def __init__(self, clock: Callable[[], float], metrics: Any = None):
        self._clock = clock
        self.metrics = metrics
        self.entries: List[JournalEntry] = []
        if metrics is not None:
            metrics.gauge_fn("recovery_journal_entries",
                             lambda: float(len(self.entries)),
                             help="transitions recorded in the request "
                                  "journal")

    def __len__(self) -> int:
        return len(self.entries)

    # -- write path ---------------------------------------------------------
    def record(self, event: str, request_id: str,
               **data: Any) -> JournalEntry:
        """Append one transition (called *before* the transition acts)."""
        if event not in EVENTS:
            raise RecoveryError(f"unknown journal event {event!r}")
        entry = JournalEntry(len(self.entries), self._clock(), event,
                             request_id, data)
        self.entries.append(entry)
        if self.metrics is not None:
            self.metrics.count("recovery_journal_records_total",
                               event=event)
        return entry

    # -- serialization ------------------------------------------------------
    def to_dicts(self) -> List[Dict[str, Any]]:
        return [e.to_dict() for e in self.entries]

    def load(self, docs: List[Dict[str, Any]]) -> None:
        """Replace the log with deserialized entries (restore path)."""
        self.entries = [JournalEntry.from_dict(d) for d in docs]

    # -- replay -------------------------------------------------------------
    @staticmethod
    def replay(entries: List[JournalEntry]
               ) -> Tuple[Dict[str, ServiceRequest],
                          List[Tuple[int, str]], Dict[str, int]]:
        """Fold the log into (requests, live queue entries, counters).

        ``requests`` maps id → a reconstructed
        :class:`~repro.service.request.ServiceRequest`; ``live`` lists
        ``(priority, request_id)`` in queue pop order (higher priority
        first, admission serial within a level — the replay serial
        counts ``enqueue``/``requeue`` events, which is exactly the
        order the live queue assigned its heap serials in); ``counters``
        carries ``submitted`` and ``admission_rejections``.
        """
        requests: Dict[str, ServiceRequest] = {}
        live: Dict[str, Tuple[int, int]] = {}  # rid -> (serial, priority)
        serial = 0
        submitted = 0
        admission_rejections = 0
        for e in entries:
            if e.event == "submit":
                submitted += 1
                requests[e.request_id] = ServiceRequest(
                    request_id=e.request_id, user=e.data["user"],
                    count=e.data["count"], priority=e.data["priority"],
                    work=e.data["work"], submitted_at=e.t)
                continue
            request = requests.get(e.request_id)
            if request is None:
                raise RecoveryError(
                    f"journal entry #{e.seq} ({e.event}) references "
                    f"unknown request {e.request_id!r}")
            if e.event == "admission_rej":
                admission_rejections += 1
            elif e.event in ("enqueue", "requeue"):
                request.state = QUEUED
                request.enqueued_at = e.t
                if e.event == "requeue":
                    request.worker = None
                    request.requeues = e.data["requeues"]
                live[e.request_id] = (serial, request.priority)
                serial += 1
            elif e.event == "defer":
                request.state = DEFERRED
                request.defers = e.data["defers"]
            elif e.event == "claim":
                request.state = PLACING
                request.started_at = e.t
                request.worker = e.data["worker"]
                live.pop(e.request_id, None)
            elif e.event == "attempt":
                request.attempts = e.data["attempt"]
            elif e.event == "cancel_flag":
                request.cancel_requested = True
            elif e.event == "expire":
                pass  # ownership change only; a requeue/finish follows
            elif e.event == "finish":
                request.state = e.data["state"]
                request.finished_at = e.t
                request.detail = e.data["detail"]
                request.created = list(e.data["created"])
                if e.data["state"] == CANCELLED:
                    live.pop(e.request_id, None)
        ordered = sorted(live.items(),
                         key=lambda kv: (-kv[1][1], kv[1][0]))
        live_entries = [(prio, rid) for rid, (_s, prio) in ordered]
        return requests, live_entries, {
            "submitted": submitted,
            "admission_rejections": admission_rejections,
        }

    @staticmethod
    def snapshot_state(gateway: Any, queue: Any) -> Dict[str, Any]:
        """Canonical JSON view of the live gateway + queue state — the
        thing :meth:`replay` must reconstruct byte-identically."""
        return {
            "requests": {rid: req.to_dict()
                         for rid, req in sorted(gateway.requests.items())},
            "queue_entries": [[prio, rid]
                              for prio, rid in queue.snapshot_entries()],
            "submitted": gateway.submitted,
            "admission_rejections": gateway.admission.rejections,
        }

    @staticmethod
    def replay_state(entries: List[JournalEntry]) -> Dict[str, Any]:
        """Replay, in the same canonical shape as
        :meth:`snapshot_state` (compare with ``json.dumps`` for the
        byte-identity property)."""
        requests, live, counters = RequestJournal.replay(entries)
        return {
            "requests": {rid: req.to_dict()
                         for rid, req in sorted(requests.items())},
            "queue_entries": [[prio, rid] for prio, rid in live],
            "submitted": counters["submitted"],
            "admission_rejections": counters["admission_rejections"],
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RequestJournal entries={len(self.entries)}>"
