"""Recovery layer: crash-tolerant request ownership for the service tier.

OAR (Capit et al., PAPERS.md) keeps its scheduler state in a database so
the brain can die and restart without losing a job; Legion's Class
objects re-instantiate failed members from persistent vault state.  This
package is the reproduction's equivalent for the live service tier of
:mod:`repro.service`:

* :mod:`~repro.recovery.journal` — a write-ahead **RequestJournal** of
  every request state transition, whose replay reconstructs the gateway
  registry and live queue byte-identically;
* :mod:`~repro.recovery.leases` — **lease-based ownership**: a worker
  claims a request under a TTL lease renewed by heartbeat, so a crashed
  worker's claim visibly expires instead of silently wedging;
* :mod:`~repro.recovery.supervisor` — the **Supervisor** daemon: detects
  expired leases, destroys placements dead workers enacted but never
  reported (no duplicates), and re-enqueues each orphan exactly once
  (no losses);
* :mod:`~repro.recovery.checkpoint` — **checkpoint/restore**: snapshot
  the tier as pure JSON at a safe point, tear it down, rebuild it, and
  continue deterministically;
* :mod:`~repro.recovery.gameday` — **game-day campaigns**
  (``legion-sim gameday``): chaos kills workers/hosts/links under live
  traffic while the report counts ground truth — lost requests and
  duplicate placements must both be zero, and a mid-run
  checkpoint/restore must leave the run byte-identical
  (``BENCH_gameday.json``).

Enable it with ``Metasystem.start_service(config, recovery=True)`` (or a
tuned :class:`RecoveryConfig`).
"""

from .checkpoint import ServiceCheckpoint, capture_checkpoint, restore_service
from .config import RecoveryConfig
from .gameday import (
    GamedayComparison,
    GamedayReport,
    default_gameday_plan,
    run_gameday,
    run_gameday_comparison,
)
from .journal import JournalEntry, RequestJournal
from .leases import Lease, LeaseTable
from .supervisor import Supervisor

__all__ = [
    "RecoveryConfig",
    "RequestJournal",
    "JournalEntry",
    "LeaseTable",
    "Lease",
    "Supervisor",
    "ServiceCheckpoint",
    "capture_checkpoint",
    "restore_service",
    "GamedayReport",
    "GamedayComparison",
    "default_gameday_plan",
    "run_gameday",
    "run_gameday_comparison",
]
