"""Game-day campaigns: chaos against the live service tier, scored.

A *game day* (the SRE drill) runs production-shaped traffic while chaos
kills the machinery serving it, and grades the recovery layer on ground
truth the simulation can count exactly:

* **lost requests** — submitted but never reaching a terminal state
  (must be 0: lease expiry + Supervisor requeue recovers every orphan);
* **duplicate placements** — app instances beyond the ones the placed
  requests own (must be 0: the Supervisor's reaper destroys what dead
  workers enacted but never reported);
* **recovered orphans** and their expiry→requeue latency;
* **MTTR** per fault kind from the injector's applied/reverted records;
* **SLO burn** from the windowed ``service_*`` series.

:func:`run_gameday` is the engine behind ``legion-sim gameday``;
:func:`run_gameday_comparison` runs the same seeded game day twice —
straight through vs. torn down and restored from a mid-run checkpoint —
and demands the two report cores be **byte-identical**, which is the
committed ``BENCH_gameday.json`` gate.

The chaos timeline is explicit rather than renewal-sampled: worker
kills land inside the traffic surge (so the victims hold leases), and
the revive happens via the fault's own revert.  Substrate noise
(a host crash, a loss spike) rides along to keep the recovery honest
under transport failures.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Dict, List, Optional

from ..sim.kernel import grid_delay
from .checkpoint import (ServiceCheckpoint, capture_checkpoint,
                         quiescence_blockers, restore_service)
from .config import RecoveryConfig

__all__ = ["GamedayReport", "GamedayComparison", "default_gameday_plan",
           "run_gameday", "run_gameday_comparison"]


def _round(value: float) -> float:
    return round(float(value), 6)


class GamedayReport:
    """One game day's outcome.  ``core_dict()`` is the byte-compared
    part; the ``checkpoint`` section (capture time, journal length at
    capture) is *excluded* from it — the uninterrupted run has none."""

    def __init__(self) -> None:
        self.params: Dict[str, Any] = {}
        self.traffic: Dict[str, Any] = {}
        self.requests: Dict[str, Any] = {}
        self.queue: Dict[str, Any] = {}
        self.pool: Dict[str, Any] = {}
        self.recovery: Dict[str, Any] = {}
        self.chaos: Dict[str, Any] = {}
        self.latency: Dict[str, Any] = {}
        self.slo: Optional[Dict[str, Any]] = None
        self.drain_seconds: float = 0.0
        #: non-core: present only on the checkpoint/restore variant
        self.checkpoint: Optional[Dict[str, Any]] = None

    # -- gates ---------------------------------------------------------------
    @property
    def lost(self) -> int:
        return int(self.recovery.get("lost", 0))

    @property
    def duplicates(self) -> int:
        return int(self.recovery.get("duplicates", 0))

    @property
    def recovered(self) -> int:
        return int(self.recovery.get("recovered", 0))

    @property
    def worker_kills(self) -> int:
        return int(self.recovery.get("worker_kills", 0))

    @property
    def passed(self) -> bool:
        """The game-day verdict: ≥2 mid-run worker kills, no request
        lost, no duplicate placement, and at least one orphan actually
        recovered (otherwise the drill exercised nothing)."""
        return (self.worker_kills >= 2 and self.lost == 0
                and self.duplicates == 0 and self.recovered > 0)

    # -- serialization -------------------------------------------------------
    def core_dict(self) -> Dict[str, Any]:
        return {
            "params": self.params,
            "traffic": self.traffic,
            "requests": self.requests,
            "queue": self.queue,
            "pool": self.pool,
            "recovery": self.recovery,
            "chaos": self.chaos,
            "latency": self.latency,
            "slo": self.slo,
            "drain_seconds": _round(self.drain_seconds),
            "passed": self.passed,
        }

    def core_json(self) -> str:
        return json.dumps(self.core_dict(), sort_keys=True)

    def to_dict(self) -> Dict[str, Any]:
        out = self.core_dict()
        out["checkpoint"] = self.checkpoint
        return out

    def to_json(self, **kwargs) -> str:
        kwargs.setdefault("indent", 2)
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    def summary(self) -> str:
        rec = self.recovery
        lines = [
            f"gameday: seed={self.params.get('seed')} "
            f"duration={self.params.get('duration'):g}s "
            f"workers={self.params.get('workers')} "
            f"checkpoint={'at %.0fs' % self.checkpoint['captured_at'] if self.checkpoint else 'off'}",
            f"  chaos:    worker_kills={self.worker_kills} "
            f"other_faults={self.chaos.get('other_faults', 0)} "
            f"worker_mttr_mean={self.chaos.get('worker_mttr_mean', 0.0):.1f}s",
            f"  requests: submitted={self.requests.get('submitted', 0)} "
            f"placed={self.requests.get('by_state', {}).get('placed', 0)} "
            f"lost={self.lost} duplicates={self.duplicates}",
            f"  recovery: recovered={self.recovered} "
            f"cancelled_on_recovery={rec.get('cancelled_on_recovery', 0)} "
            f"duplicates_averted={rec.get('duplicates_averted', 0)} "
            f"orphan_latency_mean={rec.get('orphan_latency_mean', 0.0):.1f}s",
            f"  leases:   grants={rec.get('lease_grants', 0)} "
            f"expirations={rec.get('lease_expirations', 0)} "
            f"journal_entries={rec.get('journal_entries', 0)}",
            f"  latency:  p99={self.latency.get('p99', 0.0):.3f}s",
        ]
        if self.slo:
            lines.append(
                f"  slo:      alerts={self.slo.get('alerts', 0)} "
                f"minutes_lost={self.slo.get('minutes_lost', 0.0)}")
        lines.append(f"  verdict:  {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


class GamedayComparison:
    """Uninterrupted vs. checkpoint/restore, same seed."""

    def __init__(self, straight: GamedayReport,
                 restored: GamedayReport) -> None:
        self.straight = straight
        self.restored = restored

    @property
    def byte_identical(self) -> bool:
        """The restore gate: the torn-down-and-restored run's report
        core matches the uninterrupted run's byte for byte."""
        return self.straight.core_json() == self.restored.core_json()

    @property
    def passed(self) -> bool:
        return (self.straight.passed and self.restored.passed
                and self.byte_identical)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "byte_identical": self.byte_identical,
            "reports": {"straight": self.straight.to_dict(),
                        "restored": self.restored.to_dict()},
        }

    def to_json(self, **kwargs) -> str:
        kwargs.setdefault("indent", 2)
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    def summary(self) -> str:
        return "\n".join([
            "--- straight run " + "-" * 30,
            self.straight.summary(),
            "--- checkpoint/restore run " + "-" * 20,
            self.restored.summary(),
            f"restore byte-identical: "
            f"{'yes' if self.byte_identical else 'NO'}",
            f"gameday comparison: {'PASS' if self.passed else 'FAIL'}",
        ])


def default_gameday_plan(duration: float, workers: int,
                         kills: int = 2) -> Any:
    """The stock game-day timeline over a run of ``duration`` seconds.

    Worker kills land inside the traffic surge (0.4–0.6 × duration,
    where every worker holds a lease), staggered so the Supervisor
    recovers each orphan while later kills are still pending; each
    crashed worker revives after 0.15 × duration.  A host crash and a
    message-loss spike bracket the surge to keep recovery honest under
    substrate failure.
    """
    from ..chaos.plan import ChaosPlan, FaultEvent
    kills = min(kills, workers)
    events = [
        FaultEvent(at=duration * 0.35, kind="host_crash",
                   target="dom0-ws1", duration=duration * 0.2),
        FaultEvent(at=duration * 0.40, kind="message_loss_spike",
                   duration=duration * 0.2, magnitude=0.3),
    ]
    for k in range(kills):
        events.append(FaultEvent(
            at=duration * (0.45 + 0.04 * k), kind="worker_crash",
            target=f"worker-{k % workers}", duration=duration * 0.15))
    return ChaosPlan(events=events, horizon=duration)


def run_gameday(seed: int = 0,
                users: int = 1_000_000,
                duration: float = 240.0,
                workers: int = 4,
                queue_cap: int = 64,
                backpressure: str = "shed",
                scheduler: str = "irs",
                work: float = 10.0,
                requests_per_user_hour: float = 0.0036,
                surge_multiplier: float = 12.0,
                kills: int = 2,
                lease_ttl: float = 20.0,
                heartbeat_interval: float = 5.0,
                scan_interval: float = 5.0,
                checkpoint_at: Optional[float] = None,
                plan: Any = None,
                n_domains: int = 3,
                hosts_per_domain: int = 6,
                platform_mix: int = 3,
                host_slots: int = 8,
                background_load: float = 0.3,
                sampler_window: float = 30.0,
                drain_time: float = 1800.0,
                drain_step: float = 5.0) -> GamedayReport:
    """Run one seeded game day and return its scored report.

    ``checkpoint_at`` arms the checkpoint daemon: from that virtual
    time on it polls (on the worker grid) for a safe point, then
    captures a checkpoint, JSON-round-trips it, tears the service tier
    down, and restores — all inside one virtual instant, after which
    the run must proceed byte-identically to one that never stopped.
    """
    from ..workload.testbed import TestbedSpec, build_testbed
    from ..service.config import ServiceConfig
    from ..service.report import _latency_stats, default_model
    from ..service.slos import E2E_THRESHOLD, default_service_slos
    from ..service.traffic import TrafficGenerator
    from ..chaos.injector import ChaosInjector

    meta = build_testbed(TestbedSpec(
        seed=seed, n_domains=n_domains,
        hosts_per_domain=hosts_per_domain, platform_mix=platform_mix,
        host_slots=host_slots, background_load_mean=background_load,
        sampler_window=sampler_window))
    meta.place_collection("dom0")
    meta.place_enactor("dom0")

    config = ServiceConfig(workers=workers, queue_cap=queue_cap,
                           backpressure=backpressure,
                           scheduler=scheduler, work=work)
    recovery = RecoveryConfig(lease_ttl=lease_ttl,
                              heartbeat_interval=heartbeat_interval,
                              scan_interval=scan_interval)
    suite = meta.start_service(config, recovery=recovery)
    app = suite.app

    if plan is None:
        plan = default_gameday_plan(duration, workers, kills=kills)
    injector = ChaosInjector(meta, plan).arm()

    model = default_model(users, duration,
                          requests_per_user_hour=requests_per_user_hour,
                          surge_multiplier=surge_multiplier)
    # submit through the metasystem, not a captured gateway: after a
    # checkpoint/restore the suite is a different object, and traffic
    # must flow into whichever tier is live
    generator = TrafficGenerator(
        meta.sim, meta.rngs.stream("service", "traffic"), model,
        lambda user, priority: meta.service.gateway.submit(
            user=user, priority=priority),
        duration)
    generator.start()

    checkpoint_info: Optional[Dict[str, Any]] = None
    if checkpoint_at is not None:
        def try_checkpoint() -> None:
            nonlocal checkpoint_info
            if checkpoint_info is not None:
                return
            if quiescence_blockers(meta):
                # not a safe point yet — re-poll on the worker grid so
                # the probe adds no off-grid events of its own
                meta.sim.schedule(
                    grid_delay(meta.sim.now, config.poll_interval),
                    try_checkpoint)
                return
            checkpoint = capture_checkpoint(meta)
            blob = checkpoint.to_json()
            meta.stop_service()
            restore_service(meta, ServiceCheckpoint.from_json(blob), app)
            checkpoint_info = {
                "captured_at": _round(checkpoint.captured_at),
                "journal_entries": len(checkpoint.journal),
                "bytes": len(blob),
            }
        meta.sim.schedule_at(float(checkpoint_at), try_checkpoint)

    meta.advance(duration)

    # drain until every admitted request is terminal AND every lease is
    # settled (an expired lease still owed a requeue counts as pending)
    drain_start = meta.now
    stop = drain_start + drain_time
    while meta.now < stop:
        live = meta.service
        if (all(r.terminal for r in live.gateway.requests.values())
                and not live.leases.active
                and not live.leases.late_effects):
            break
        meta.advance(drain_step)
    drain_seconds = meta.now - drain_start

    injector.teardown()
    suite = meta.service  # the restored suite, when a checkpoint ran
    suite.stop()

    # -- ground truth ---------------------------------------------------------
    gateway = suite.gateway
    lost = sum(1 for r in gateway.requests.values() if not r.terminal)
    expected_instances = sum(
        len(r.created) for r in gateway.requests.values()
        if r.state == "placed")
    duplicates = len(app.instances) - expected_instances

    by_state: Dict[str, int] = {}
    for request in gateway.requests.values():
        by_state[request.state] = by_state.get(request.state, 0) + 1

    worker_repairs = [r.reverted_at - r.applied_at
                      for r in injector.records
                      if r.kind == "worker_crash"
                      and r.applied_at is not None
                      and r.reverted_at is not None]
    chaos_stats = injector.stats()
    supervisor_stats = suite.supervisor.stats()

    report = GamedayReport()
    report.params = {
        "seed": seed, "users": model.users, "duration": _round(duration),
        "workers": workers, "queue_cap": queue_cap,
        "backpressure": backpressure, "scheduler": scheduler,
        "work": _round(work), "kills": kills,
        "recovery": recovery.to_dict(),
        "plan": plan.counts_by_kind(),
    }
    report.traffic = generator.stats()
    report.requests = {
        "submitted": gateway.submitted,
        "admission_rejections": gateway.admission.rejections,
        "by_state": dict(sorted(by_state.items())),
    }
    report.queue = suite.queue.stats()
    report.pool = {k: (_round(v) if isinstance(v, float) else v)
                   for k, v in suite.pool.stats().items()}
    report.recovery = {
        "lost": lost,
        "duplicates": duplicates,
        "app_instances": len(app.instances),
        "expected_instances": expected_instances,
        "recovered": supervisor_stats["recovered"],
        "cancelled_on_recovery": supervisor_stats["cancelled_on_recovery"],
        "duplicates_averted": supervisor_stats["duplicates_averted"],
        "orphan_latency_mean": _round(
            supervisor_stats["orphan_latency_mean"]),
        "orphan_latency_max": _round(supervisor_stats["orphan_latency_max"]),
        "worker_kills": suite.pool.kills,
        "worker_revivals": suite.pool.revivals,
        "worker_abandons": suite.pool.abandons,
        "lease_grants": suite.leases.grants,
        "lease_expirations": suite.leases.expirations,
        "heartbeats": suite.leases.renewals,
        "journal_entries": len(suite.journal.entries),
    }
    report.chaos = {
        "planned": chaos_stats["planned"],
        "injected": chaos_stats["injected"],
        "reverted": chaos_stats["reverted"],
        "skipped": chaos_stats["skipped"],
        "errors": chaos_stats["errors"],
        "forced_repairs": chaos_stats["forced_repairs"],
        "residual_faults": chaos_stats["residual_faults"],
        "other_faults": sum(v for k, v in chaos_stats["injected"].items()
                            if k != "worker_crash"),
        "worker_mttr_mean": _round(
            sum(worker_repairs) / len(worker_repairs)
            if worker_repairs else 0.0),
        "worker_mttr_max": _round(max(worker_repairs)
                                  if worker_repairs else 0.0),
        "mttr_mean": _round(chaos_stats["mttr_mean"]),
    }
    report.latency = _latency_stats(meta.spans.spans)
    report.drain_seconds = drain_seconds
    report.checkpoint = checkpoint_info

    if meta.sampler is not None:
        from ..obs.slo import evaluate_slos
        meta.sampler.flush()
        specs = default_service_slos(threshold=E2E_THRESHOLD)
        results = evaluate_slos(specs, meta.sampler.windows)
        report.slo = {
            "window_seconds": meta.sampler.window,
            "windows": len(meta.sampler.windows),
            "minutes_lost": _round(sum(r.minutes_lost for r in results)),
            "alerts": sum(len(r.alerts) for r in results),
            "exhausted": sum(1 for r in results if r.exhausted),
            "budgets": {r.spec.name: _round(r.budget_consumed)
                        for r in results},
        }
    return report


def run_gameday_comparison(checkpoint_at: Optional[float] = None,
                           duration: float = 240.0,
                           **kwargs) -> GamedayComparison:
    """The BENCH_gameday gate: the same seeded game day straight
    through, then with a mid-run checkpoint/teardown/restore — the two
    report cores must match byte for byte."""
    if checkpoint_at is None:
        checkpoint_at = duration * 0.75
    kwargs.pop("checkpoint_at", None)
    straight = run_gameday(duration=duration, checkpoint_at=None, **kwargs)
    restored = run_gameday(duration=duration,
                           checkpoint_at=checkpoint_at, **kwargs)
    return GamedayComparison(straight, restored)
