"""Stock objectives for the live service tier.

Two SLOs over the ``service_*`` signals the gateway emits:

* **service-e2e-latency** — the headline objective: 99% of *placed*
  requests must go submit→placed within 30 virtual seconds.  This is
  the objective the shedding comparison gates on: an unbounded backlog
  under an overload surge makes queue wait dominate e2e latency and
  burns this budget; a bounded backlog sheds the excess instead and
  keeps p99 inside the threshold.
* **service-success** — of the requests that reached a worker, 95%
  must place successfully (``outcome="placed"`` vs ``outcome="failed"``
  — shed/rejected/cancelled requests are *not* failures; backpressure
  working as designed must not burn the success budget).

The thresholds sit on ``DEFAULT_TIME_BUCKETS`` boundaries so windowed
good/bad accounting needs no intra-bucket interpolation.
"""

from __future__ import annotations

from typing import List

from ..obs.slo import SLOSpec

__all__ = ["default_service_slos"]

#: e2e latency threshold (virtual seconds; a histogram bucket bound)
E2E_THRESHOLD = 30.0


def default_service_slos(threshold: float = E2E_THRESHOLD) -> List[SLOSpec]:
    """The stock objectives for a live service run."""
    return [
        SLOSpec(
            name="service-e2e-latency",
            kind="latency",
            target=0.99,
            metric="service_e2e_seconds",
            threshold=threshold,
            description=f"p99 of placed requests go submit->placed "
                        f"within {threshold:g} virtual seconds"),
        SLOSpec(
            name="service-success",
            kind="ratio",
            target=0.95,
            good="service_request_outcomes_total",
            good_labels={"outcome": "placed"},
            bad="service_request_outcomes_total",
            bad_labels={"outcome": "failed"},
            description="95% of worked requests place successfully "
                        "(shed/rejected are backpressure, not failure)"),
    ]
