"""run_service / run_service_comparison: seeded live-service campaigns.

Mirrors :func:`repro.chaos.campaign.run_campaign` and
:func:`repro.economy.campaign.run_economy`: build the standard testbed,
start the service tier, drive it **open-loop** with seeded diurnal/
bursty traffic (including a deterministic overload surge), drain, and
aggregate a :class:`ServiceReport` joining

* per-request end-to-end latency (submit→placed) from the
  ``service.request`` spans the gateway records, and
* the SLO engine's burn-rate verdicts over the windowed ``service_*``
  time series

— serialized with sorted keys and rounded floats so a committed
``BENCH_service.json`` is byte-stable across reruns of the same seed.

:func:`run_service_comparison` replays the identical seeded world twice
— bounded backlog (shedding on) vs unbounded (shedding off) — and its
``shedding_protects_slo`` gate is the acceptance criterion of the
``legion-sim serve --compare-shedding`` subcommand: the overload surge
must exhaust the e2e latency error budget with shedding off while the
bounded run keeps p99 inside the SLO threshold.

Imports of the testbed/metasystem layers happen inside the functions to
keep ``repro.service`` importable without a cycle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from .slos import E2E_THRESHOLD, default_service_slos
from .traffic import TrafficModel

__all__ = ["ServiceReport", "ServiceComparison",
           "run_service", "run_service_comparison"]


def _round(value: float) -> float:
    return round(float(value), 6)


@dataclass
class ServiceReport:
    """Aggregated outcome of one seeded live-service campaign."""

    scheduler: str = "irs"
    seed: int = 0
    users: int = 0
    duration: float = 0.0
    workers: int = 0
    queue_cap: int = 0
    backpressure: str = "shed"
    work: float = 0.0
    slo_threshold: float = E2E_THRESHOLD

    traffic: Dict[str, Any] = field(default_factory=dict)
    #: gateway registry: submitted count + requests by terminal state
    requests: Dict[str, Any] = field(default_factory=dict)
    queue: Dict[str, Any] = field(default_factory=dict)
    pool: Dict[str, Any] = field(default_factory=dict)
    #: submit→placed latency distribution from ``service.request`` spans
    latency: Dict[str, Any] = field(default_factory=dict)
    #: SLO engine verdicts over the windowed ``service_*`` series
    slo: Optional[Dict[str, Any]] = None
    #: requests still non-terminal when the drain budget ran out
    pending: int = 0
    drain_seconds: float = 0.0

    # -- derived --------------------------------------------------------------
    def _state(self, state: str) -> int:
        return int(self.requests.get("by_state", {}).get(state, 0))

    @property
    def placed(self) -> int:
        return self._state("placed")

    @property
    def failed(self) -> int:
        return self._state("failed")

    @property
    def shed(self) -> int:
        return self._state("shed")

    @property
    def rejected(self) -> int:
        return self._state("rejected")

    @property
    def p99(self) -> float:
        return float(self.latency.get("p99", 0.0))

    @property
    def throughput(self) -> float:
        """Placed requests per virtual second of the open-loop window."""
        if self.duration <= 0:
            return 0.0
        return self.placed / self.duration

    @property
    def p99_within_slo(self) -> bool:
        """Did p99 e2e latency land inside the SLOSpec threshold?"""
        return self.placed > 0 and self.p99 <= self.slo_threshold

    @property
    def latency_budget_exhausted(self) -> bool:
        """Did the run burn the whole e2e latency error budget?"""
        if not self.slo:
            return False
        return bool(self.slo.get("latency_exhausted", False))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheduler": self.scheduler,
            "seed": self.seed,
            "users": self.users,
            "duration": _round(self.duration),
            "workers": self.workers,
            "queue_cap": self.queue_cap,
            "backpressure": self.backpressure,
            "work": _round(self.work),
            "slo_threshold": _round(self.slo_threshold),
            "traffic": self.traffic,
            "requests": self.requests,
            "queue": self.queue,
            "pool": self.pool,
            "latency": self.latency,
            "throughput": _round(self.throughput),
            "p99_within_slo": self.p99_within_slo,
            "slo": self.slo,
            "pending": self.pending,
            "drain_seconds": _round(self.drain_seconds),
        }

    def to_json(self, **kwargs) -> str:
        kwargs.setdefault("indent", 2)
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    def summary(self) -> str:
        lat = self.latency
        lines = [
            f"service campaign: scheduler={self.scheduler} "
            f"seed={self.seed} users={self.users} "
            f"duration={self.duration:g}s workers={self.workers} "
            f"queue_cap={self.queue_cap or 'unbounded'} "
            f"mode={self.backpressure}",
            f"  traffic:  arrivals={self.traffic.get('arrivals', 0)} "
            f"accepted={self.traffic.get('accepted', 0)}",
            f"  outcomes: placed={self.placed} failed={self.failed} "
            f"shed={self.shed} rejected={self.rejected} "
            f"pending={self.pending}",
            f"  queue:    peak_depth={self.queue.get('peak_depth', 0)} "
            f"deferred={self.queue.get('deferred', 0)}",
            f"  latency:  p50={lat.get('p50', 0.0):.3f}s "
            f"p95={lat.get('p95', 0.0):.3f}s "
            f"p99={lat.get('p99', 0.0):.3f}s "
            f"max={lat.get('max', 0.0):.3f}s "
            f"[threshold {self.slo_threshold:g}s: "
            f"{'OK' if self.p99_within_slo else 'BREACH'}]",
            f"  pool:     busy_fraction="
            f"{self.pool.get('busy_fraction', 0.0):.3f} "
            f"throughput={self.throughput:.3f}/s",
        ]
        if self.slo:
            lines.append(
                f"  slo:      windows={self.slo.get('windows', 0)} "
                f"alerts={self.slo.get('alerts', 0)} "
                f"minutes_lost={self.slo.get('minutes_lost', 0.0)} "
                f"latency_budget="
                f"{'EXHAUSTED' if self.latency_budget_exhausted else 'ok'}")
        return "\n".join(lines)


@dataclass
class ServiceComparison:
    """Shedding on (bounded backlog) vs off (unbounded), same seed."""

    reports: Dict[str, ServiceReport] = field(default_factory=dict)

    def report(self, name: str) -> ServiceReport:
        return self.reports[name]

    @property
    def shedding_protects_slo(self) -> bool:
        """The BENCH gate: the overload surge exhausts the e2e latency
        budget with shedding off, while the bounded run keeps its budget
        *and* p99 inside the threshold."""
        shed = self.reports.get("shedding")
        noshed = self.reports.get("no-shedding")
        if shed is None or noshed is None:
            return False
        return (noshed.latency_budget_exhausted
                and not shed.latency_budget_exhausted
                and shed.p99_within_slo)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shedding_protects_slo": self.shedding_protects_slo,
            "reports": {name: self.reports[name].to_dict()
                        for name in sorted(self.reports)},
        }

    def to_json(self, **kwargs) -> str:
        kwargs.setdefault("indent", 2)
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    def summary(self) -> str:
        header = (f"{'variant':<12} {'placed':>7} {'shed':>6} "
                  f"{'pending':>7} {'p99(s)':>8} {'budget':>10}")
        lines = [header, "-" * len(header)]
        for name in sorted(self.reports):
            r = self.reports[name]
            budget = "EXHAUSTED" if r.latency_budget_exhausted else "ok"
            lines.append(
                f"{name:<12} {r.placed:>7} {r.shed:>6} {r.pending:>7} "
                f"{r.p99:>8.3f} {budget:>10}")
        lines.append("shedding protects the e2e latency SLO"
                     if self.shedding_protects_slo else
                     "shedding does NOT protect the e2e latency SLO")
        return "\n".join(lines)


def _latency_stats(spans: Any) -> Dict[str, Any]:
    """Distribution of submit→placed latency from the request spans."""
    samples = sorted(float(s.end - s.start) for s in spans
                     if s.name == "service.request" and s.status == "ok")
    if not samples:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                "p99": 0.0, "max": 0.0}
    arr = np.asarray(samples)
    return {
        "count": len(samples),
        "mean": _round(float(arr.mean())),
        "p50": _round(float(np.percentile(arr, 50))),
        "p95": _round(float(np.percentile(arr, 95))),
        "p99": _round(float(np.percentile(arr, 99))),
        "max": _round(float(arr[-1])),
    }


def default_model(users: int, duration: float,
                  requests_per_user_hour: float = 0.2,
                  surge_multiplier: float = 8.0) -> TrafficModel:
    """The stock campaign traffic: a gentle diurnal tide plus a
    deterministic overload surge through the middle fifth of the run."""
    return TrafficModel(
        users=users,
        requests_per_user_hour=requests_per_user_hour,
        diurnal_amplitude=0.3,
        burst_multiplier=2.0,
        mean_burst_every=max(duration / 3.0, 1.0),
        mean_burst_length=max(duration / 20.0, 1.0),
        surge_start=duration * 0.4,
        surge_length=duration * 0.2,
        surge_multiplier=surge_multiplier)


def run_service(seed: int = 0,
                users: int = 1_000_000,
                duration: float = 240.0,
                workers: int = 4,
                queue_cap: int = 64,
                backpressure: str = "shed",
                scheduler: str = "irs",
                work: float = 10.0,
                requests_per_user_hour: float = 0.0036,
                surge_multiplier: float = 12.0,
                model: Optional[TrafficModel] = None,
                slo_threshold: float = E2E_THRESHOLD,
                n_domains: int = 3,
                hosts_per_domain: int = 6,
                platform_mix: int = 3,
                host_slots: int = 8,
                background_load: float = 0.3,
                sampler_window: float = 30.0,
                drain_time: float = 1800.0,
                drain_step: float = 5.0,
                meta: Any = None) -> ServiceReport:
    """Run one seeded open-loop service campaign and return its report.

    ``queue_cap=0`` disables the bounded backlog (shedding off) — the
    overload baseline.  Pass a prebuilt ``meta`` to reuse a custom
    testbed (it must not have a service started yet)."""
    from ..workload.testbed import TestbedSpec, build_testbed
    from .config import ServiceConfig

    if meta is None:
        meta = build_testbed(TestbedSpec(
            seed=seed, n_domains=n_domains,
            hosts_per_domain=hosts_per_domain,
            platform_mix=platform_mix,
            host_slots=host_slots,
            background_load_mean=background_load,
            sampler_window=sampler_window))
        meta.place_collection("dom0")
        meta.place_enactor("dom0")
    elif sampler_window and meta.sampler is None:
        meta.start_sampler(window=sampler_window)

    config = ServiceConfig(workers=workers, queue_cap=queue_cap,
                           backpressure=backpressure,
                           scheduler=scheduler, work=work)
    suite = meta.start_service(config)
    if model is None:
        model = default_model(users, duration,
                              requests_per_user_hour=requests_per_user_hour,
                              surge_multiplier=surge_multiplier)

    from .traffic import TrafficGenerator
    generator = TrafficGenerator(
        meta.sim, meta.rngs.stream("service", "traffic"), model,
        lambda user, priority: suite.gateway.submit(user=user,
                                                    priority=priority),
        duration)
    generator.start()
    meta.advance(duration)

    # drain: advance until every admitted request reaches a terminal
    # state (the no-shedding overload baseline may not make it before
    # the drain budget runs out — those requests count as ``pending``)
    drain_start = meta.now
    stop = drain_start + drain_time
    gateway = suite.gateway
    while meta.now < stop:
        if all(r.terminal for r in gateway.requests.values()):
            break
        meta.advance(drain_step)
    drain_seconds = meta.now - drain_start
    suite.stop()

    report = ServiceReport(
        scheduler=scheduler, seed=seed, users=model.users,
        duration=duration, workers=workers, queue_cap=queue_cap,
        backpressure=backpressure, work=work,
        slo_threshold=slo_threshold)
    report.traffic = generator.stats()
    by_state: Dict[str, int] = {}
    for request in gateway.requests.values():
        by_state[request.state] = by_state.get(request.state, 0) + 1
    report.requests = {
        "submitted": gateway.submitted,
        "admission_rejections": gateway.admission.rejections,
        "by_state": dict(sorted(by_state.items())),
    }
    report.queue = suite.queue.stats()
    report.pool = {k: (_round(v) if isinstance(v, float) else v)
                   for k, v in suite.pool.stats().items()}
    report.latency = _latency_stats(meta.spans.spans)
    report.pending = sum(1 for r in gateway.requests.values()
                         if not r.terminal)
    report.drain_seconds = drain_seconds

    if meta.sampler is not None:
        from ..obs.slo import evaluate_slos
        meta.sampler.flush()
        specs = default_service_slos(threshold=slo_threshold)
        results = evaluate_slos(specs, meta.sampler.windows)
        by_name = {r.spec.name: r for r in results}
        latency_result = by_name.get("service-e2e-latency")
        report.slo = {
            "window_seconds": meta.sampler.window,
            "windows": len(meta.sampler.windows),
            "minutes_lost": _round(sum(r.minutes_lost for r in results)),
            "alerts": sum(len(r.alerts) for r in results),
            "exhausted": sum(1 for r in results if r.exhausted),
            "latency_exhausted": (latency_result is not None
                                  and latency_result.exhausted),
            "budgets": {r.spec.name: _round(r.budget_consumed)
                        for r in results},
        }
    return report


def run_service_comparison(queue_cap: int = 64, **kwargs
                           ) -> ServiceComparison:
    """Replay the identical seeded overload twice — bounded backlog vs
    unbounded — for the shedding-protects-SLO verdict; the report dict
    feeds ``BENCH_service.json``."""
    if queue_cap <= 0:
        raise ValueError("comparison needs a bounded queue_cap for the "
                         "shedding variant")
    kwargs.pop("meta", None)  # each variant builds its own seeded world
    comparison = ServiceComparison()
    comparison.reports["shedding"] = run_service(queue_cap=queue_cap,
                                                 **kwargs)
    comparison.reports["no-shedding"] = run_service(queue_cap=0, **kwargs)
    return comparison
