"""Live service mode: the production-shaped tier over the Metasystem.

Every entry point before this package was a closed-loop batch campaign —
the experiment loop submitted a wave, waited, submitted the next.  The
paper's Scheduler/Enactor/Collection protocol exists to serve a *stream*
of placement requests from real users; this package wraps the simulated
metasystem in exactly the high-level modular decomposition OAR (Capit et
al., PAPERS.md) gives a batch RMS — submission front-end, queue,
executor — and drives it open-loop:

* :mod:`~repro.service.gateway` — a typed **request gateway**
  (submit/status/cancel/health routes) with front-door admission control
  reusing the guardrails admission semantics (bounded backlog + load
  limit, :class:`~repro.errors.AdmissionRejected`),
* :mod:`~repro.service.queue` — a bounded, priority-aware **placement
  queue** with shed/reject/defer backpressure modes and queue-depth
  metrics,
* :mod:`~repro.service.workers` — a **worker pool**: N seeded daemons on
  the sim kernel draining the queue into ``Scheduler.run`` placements,
  with per-worker spans and retry-on-transient wiring,
* :mod:`~repro.service.traffic` — an **open-loop traffic generator**:
  seeded diurnal/bursty user populations (Lazarevic & Sacks, PAPERS.md)
  scaling to millions of simulated users at O(arrivals) cost,
* :mod:`~repro.service.report` — the :class:`ServiceReport` joining
  per-request end-to-end latency (enqueue→placed, from the span tracer)
  with the SLO engine's burn-rate verdicts, exported byte-stably; plus
  ``run_service`` / ``run_service_comparison``, the engines behind
  ``legion-sim serve`` and the committed ``BENCH_service.json``.

Everything runs on virtual time with dedicated ``("service", ...)``
seeded RNG streams, so a saturated→drained service cycle is byte-
identical across reruns — the property the ``service-smoke`` CI job
gates on.
"""

from .config import ServiceConfig
from .gateway import RequestGateway, ServiceAdmission
from .queue import PlacementQueue
from .report import (
    ServiceComparison,
    ServiceReport,
    run_service,
    run_service_comparison,
)
from .request import (
    CANCELLED,
    DEFERRED,
    FAILED,
    PLACED,
    PLACING,
    QUEUED,
    REJECTED,
    SHED,
    TERMINAL_STATES,
    RouteResult,
    ServiceRequest,
)
from .slos import default_service_slos
from .traffic import TrafficGenerator, TrafficModel
from .workers import WorkerPool

__all__ = [
    "ServiceConfig",
    "ServiceSuite",
    "RequestGateway",
    "ServiceAdmission",
    "PlacementQueue",
    "WorkerPool",
    "TrafficGenerator",
    "TrafficModel",
    "ServiceRequest",
    "RouteResult",
    "ServiceReport",
    "ServiceComparison",
    "run_service",
    "run_service_comparison",
    "default_service_slos",
    "QUEUED", "DEFERRED", "PLACING", "PLACED", "FAILED", "SHED",
    "REJECTED", "CANCELLED", "TERMINAL_STATES",
]


class ServiceSuite:
    """The wired-up live service of one Metasystem (what
    :meth:`~repro.metasystem.Metasystem.start_service` returns)."""

    def __init__(self, config: ServiceConfig, gateway: RequestGateway,
                 queue: PlacementQueue, pool: WorkerPool, app,
                 recovery=None, journal=None, leases=None, supervisor=None):
        self.config = config
        self.gateway = gateway
        self.queue = queue
        self.pool = pool
        #: the Class object service requests place instances of
        self.app = app
        #: recovery layer (``start_service(recovery=...)``); all None when
        #: the tier runs without it
        self.recovery = recovery
        self.journal = journal
        self.leases = leases
        self.supervisor = supervisor

    def stop(self) -> None:
        """Stop the worker pool (queued requests stay queued)."""
        if self.supervisor is not None:
            self.supervisor.stop()
        self.pool.stop()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ServiceSuite workers={self.pool.size} "
                f"queue={self.queue.depth}/{self.queue.cap or 'inf'} "
                f"requests={self.gateway.submitted}>")
