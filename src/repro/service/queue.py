"""PlacementQueue: the bounded, priority-aware backlog of the service.

A binary heap ordered by ``(-priority, seq)`` — higher priority first,
strict FIFO within a priority level (``seq`` is the admission serial, so
ordering is deterministic).  The queue owns the *decision* side of
backpressure: :meth:`offer` returns a disposition string and the gateway
owns the timing side (scheduling deferred re-offers on the sim kernel).

Invariants (pinned by the hypothesis property in
``tests/test_service.py``):

* ``depth <= cap`` always holds when the queue is bounded;
* every offered request is accounted for exactly once —
  ``enqueued == popped + cancelled + depth`` and
  ``offered == enqueued + shed + rejected + deferred`` (a deferred
  offer is re-offered later and then counted under its final
  disposition).

Cancellation is lazy: :meth:`cancel` marks the id and :meth:`pop` skips
marked entries, so cancelling costs O(1) and never perturbs heap order.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, List, Optional, Set, Tuple

from .config import ServiceConfig
from .request import ServiceRequest

__all__ = ["PlacementQueue"]

#: :meth:`PlacementQueue.offer` dispositions
ENQUEUED = "enqueued"
SHED = "shed"
REJECTED = "rejected"
DEFERRED = "deferred"


class PlacementQueue:
    """Bounded priority backlog between the gateway and the worker pool."""

    def __init__(self, cap: int = 0, backpressure: str = "shed",
                 metrics: Any = None):
        ServiceConfig(queue_cap=cap, backpressure=backpressure)  # validate
        self.cap = cap
        self.backpressure = backpressure
        self.metrics = metrics
        self._heap: List[Tuple[int, int, ServiceRequest]] = []
        self._seq = itertools.count()
        self._cancelled: Set[str] = set()
        #: live entries (heap minus lazily-cancelled ones)
        self._depth = 0
        self.peak_depth = 0
        self.offered = 0
        self.enqueued = 0
        self.popped = 0
        self.shed = 0
        self.rejected = 0
        self.deferred = 0
        self.cancelled = 0
        if metrics is not None:
            metrics.gauge_fn("service_queue_depth",
                             lambda: float(self._depth),
                             help="placement requests waiting in the "
                                  "bounded backlog")
            metrics.gauge_fn("service_queue_peak_depth",
                             lambda: float(self.peak_depth),
                             help="high-water mark of the backlog")

    # -- state ----------------------------------------------------------------
    @property
    def depth(self) -> int:
        return self._depth

    @property
    def full(self) -> bool:
        return self.cap > 0 and self._depth >= self.cap

    def __len__(self) -> int:
        return self._depth

    # -- offer / pop ----------------------------------------------------------
    def offer(self, request: ServiceRequest,
              final: bool = False) -> str:
        """Try to admit ``request``; returns its disposition.

        ``final=True`` (a deferred request out of re-offers) downgrades a
        would-be ``deferred`` disposition to ``shed`` — defer is a delay,
        not an infinite loop.  Dispositions: ``"enqueued"`` | ``"shed"``
        | ``"rejected"`` | ``"deferred"``.
        """
        self.offered += 1
        if self.full:
            if self.backpressure == "defer" and not final:
                self.deferred += 1
                self._count("deferred")
                return DEFERRED
            if self.backpressure == "reject":
                self.rejected += 1
                self._count("rejected")
                return REJECTED
            self.shed += 1
            self._count("shed")
            return SHED
        heappush(self._heap, (-request.priority, next(self._seq), request))
        self._depth += 1
        self.enqueued += 1
        if self._depth > self.peak_depth:
            self.peak_depth = self._depth
        return ENQUEUED

    def requeue(self, request: ServiceRequest) -> str:
        """Force a recovered orphan back in, bypassing the cap.

        Used only by the recovery Supervisor: a request that was already
        admitted once must not be shed on its way back from a worker
        crash ("no lost requests"), so the cap — an *admission* control —
        does not apply.  Accounting stays exactly-once: the entry counts
        as offered + enqueued again, matching the extra pop it will get.
        """
        self.offered += 1
        heappush(self._heap, (-request.priority, next(self._seq), request))
        self._depth += 1
        self.enqueued += 1
        if self._depth > self.peak_depth:
            self.peak_depth = self._depth
        self._count("requeued")
        return ENQUEUED

    def pop(self) -> Optional[ServiceRequest]:
        """Highest-priority, oldest request — or None when drained."""
        while self._heap:
            _nprio, _seq, request = heappop(self._heap)
            if request.request_id in self._cancelled:
                self._cancelled.discard(request.request_id)
                continue
            self._depth -= 1
            self.popped += 1
            return request
        return None

    def cancel(self, request_id: str) -> bool:
        """Lazily remove a queued request; True if it was waiting."""
        for _nprio, _seq, request in self._heap:
            if (request.request_id == request_id
                    and request_id not in self._cancelled):
                self._cancelled.add(request_id)
                self._depth -= 1
                self.cancelled += 1
                return True
        return False

    def snapshot_entries(self) -> List[Tuple[int, str]]:
        """Live ``(priority, request_id)`` entries in pop order (heap
        order minus lazily-cancelled ids) — the canonical queue state
        the journal replay reconstructs."""
        return [(request.priority, request.request_id)
                for _nprio, _seq, request in sorted(self._heap)
                if request.request_id not in self._cancelled]

    # -- checkpoint -----------------------------------------------------------
    def counters(self) -> dict:
        """Cumulative statistics + heap serial for checkpoint/restore."""
        return {
            "peak_depth": self.peak_depth,
            "offered": self.offered,
            "enqueued": self.enqueued,
            "popped": self.popped,
            "shed": self.shed,
            "rejected": self.rejected,
            "deferred": self.deferred,
            "cancelled": self.cancelled,
            "seq": self.enqueued,  # serials are only drawn on push
        }

    def restore_counters(self, doc: dict) -> None:
        """Continue counting where a checkpointed queue left off."""
        self.peak_depth = doc["peak_depth"]
        self.offered = doc["offered"]
        self.enqueued = doc["enqueued"]
        self.popped = doc["popped"]
        self.shed = doc["shed"]
        self.rejected = doc["rejected"]
        self.deferred = doc["deferred"]
        self.cancelled = doc["cancelled"]
        self._seq = itertools.count(doc["seq"])

    # -- metrics --------------------------------------------------------------
    def _count(self, disposition: str) -> None:
        if self.metrics is not None:
            self.metrics.count("service_backpressure_total",
                               mode=disposition)

    def stats(self) -> dict:
        return {
            "cap": self.cap,
            "backpressure": self.backpressure,
            "depth": self._depth,
            "peak_depth": self.peak_depth,
            "offered": self.offered,
            "enqueued": self.enqueued,
            "popped": self.popped,
            "shed": self.shed,
            "rejected": self.rejected,
            "deferred": self.deferred,
            "cancelled": self.cancelled,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<PlacementQueue depth={self._depth}/"
                f"{self.cap or 'inf'} mode={self.backpressure} "
                f"peak={self.peak_depth}>")
