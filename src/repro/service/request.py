"""ServiceRequest: one user placement request moving through the tier.

The request's lifecycle is a small state machine::

    submit ──┬─► QUEUED ──► PLACING ──┬─► PLACED
             │     │          │       └─► FAILED
             │     │          └─► (lease expired: worker crash) ─► QUEUED
             │     └─► CANCELLED
             ├─► DEFERRED ──► (re-offer) ──► QUEUED | SHED
             ├─► SHED          (backlog full, mode "shed")
             └─► REJECTED      (backlog full, mode "reject";
                                or front-door admission refusal)

Shed/rejected/cancelled requests stay in the gateway's registry — they
are *counted, not lost*: ``status`` answers for them forever, which is
what the backpressure-correctness tests pin.

With the recovery layer on, a PLACING request whose worker crashes is
re-enqueued by the Supervisor when its lease expires (``requeues``
counts the recoveries), so PLACING → QUEUED is a legal edge and every
submitted request still terminates in exactly one terminal state.  A
cancel that arrives after a worker has already popped the request sets
``cancel_requested`` instead of finishing it; the worker (or the
Supervisor, if the worker dies first) honours the flag at its next
claim-time check and finishes the request CANCELLED.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "QUEUED", "DEFERRED", "PLACING", "PLACED", "FAILED", "SHED",
    "REJECTED", "CANCELLED", "TERMINAL_STATES",
    "ServiceRequest", "RouteResult",
]

QUEUED = "queued"
DEFERRED = "deferred"
PLACING = "placing"
PLACED = "placed"
FAILED = "failed"
SHED = "shed"
REJECTED = "rejected"
CANCELLED = "cancelled"

#: states a request never leaves
TERMINAL_STATES = frozenset({PLACED, FAILED, SHED, REJECTED, CANCELLED})


class ServiceRequest:
    """One submit moving through gateway → queue → worker."""

    __slots__ = ("request_id", "user", "count", "priority", "work",
                 "state", "submitted_at", "enqueued_at", "started_at",
                 "finished_at", "worker", "attempts", "defers", "detail",
                 "created", "cancel_requested", "requeues")

    def __init__(self, request_id: str, user: str, count: int = 1,
                 priority: int = 0, work: Optional[float] = None,
                 submitted_at: float = 0.0):
        self.request_id = request_id
        self.user = user
        self.count = count
        self.priority = priority
        self.work = work
        self.state = QUEUED
        self.submitted_at = submitted_at
        self.enqueued_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.worker: Optional[int] = None
        self.attempts = 0
        self.defers = 0
        self.detail = ""
        self.created: List[str] = []
        #: a cancel arrived after a worker claimed it; honoured at the
        #: next claim-time check instead of racing the placement
        self.cancel_requested = False
        #: times the Supervisor re-enqueued it after a lease expiry
        self.requeues = 0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def e2e_latency(self) -> Optional[float]:
        """Enqueue→placed latency (None unless the request was placed)."""
        if self.state != PLACED or self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "user": self.user,
            "count": self.count,
            "priority": self.priority,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "enqueued_at": self.enqueued_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "worker": self.worker,
            "attempts": self.attempts,
            "defers": self.defers,
            "detail": self.detail,
            "created": list(self.created),
            "cancel_requested": self.cancel_requested,
            "requeues": self.requeues,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ServiceRequest {self.request_id} user={self.user} "
                f"state={self.state} prio={self.priority}>")


@dataclass(frozen=True)
class RouteResult:
    """What a gateway route returns to the caller (a typed response)."""

    route: str            # "submit" | "status" | "cancel"
    ok: bool
    request_id: str = ""
    state: str = ""
    detail: str = ""
    snapshot: Optional[Dict[str, Any]] = field(default=None)

    def __bool__(self) -> bool:
        return self.ok
