"""Open-loop traffic: seeded diurnal/bursty user populations.

The generator emits submits as a **non-homogeneous Poisson process**
via Lewis–Shedler thinning: candidate arrivals are drawn at the peak
rate ``λmax`` and accepted with probability ``λ(t)/λmax``, where

    λ(t) = users × rate_per_user × diurnal(t) × burst(t) × surge(t)

* ``diurnal(t)`` is a sinusoid over ``day_length`` (amplitude
  ``diurnal_amplitude``) — the daily tide of a user population;
* ``burst(t)`` is a seeded two-state flare process (Lazarevic & Sacks,
  PAPERS.md): bursts arrive every ``mean_burst_every`` seconds on
  average, last ``mean_burst_length``, and multiply the rate by
  ``burst_multiplier``;
* ``surge(t)`` is an optional *deterministic* overload window
  (``surge_start``/``surge_length``/``surge_multiplier``) — the
  controlled burst the shedding-vs-no-shedding comparison leans on.

Because cost is O(arrivals), not O(users), ``users`` scales to millions
of simulated users without changing the price of a run: ten million
users at a tiny per-user rate is just a higher λ(t).  All randomness
comes from one seeded stream, so a traffic trace is a pure function of
``(seed, model, duration)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

__all__ = ["TrafficGenerator", "TrafficModel"]


@dataclass(frozen=True)
class TrafficModel:
    """The shape of one simulated user population."""

    #: simulated user population (cost is O(arrivals), so go big)
    users: int = 1000
    #: mean submits per user per hour at the diurnal midpoint
    requests_per_user_hour: float = 0.5
    #: relative swing of the daily sinusoid (0 = flat)
    diurnal_amplitude: float = 0.4
    #: period of the diurnal cycle in virtual seconds
    day_length: float = 86400.0
    #: rate multiplier while a stochastic burst is active (1 = no bursts)
    burst_multiplier: float = 3.0
    #: mean virtual seconds between burst onsets
    mean_burst_every: float = 600.0
    #: mean virtual seconds a burst lasts
    mean_burst_length: float = 60.0
    #: deterministic overload window: start offset (<0 disables)
    surge_start: float = -1.0
    #: deterministic overload window: duration in virtual seconds
    surge_length: float = 0.0
    #: rate multiplier inside the surge window
    surge_multiplier: float = 1.0
    #: relative weights of priorities 0, 1, 2, ... for each arrival
    priority_weights: Tuple[float, ...] = (0.8, 0.15, 0.05)

    def __post_init__(self) -> None:
        if self.users < 1:
            raise ValueError("users must be >= 1")
        if self.requests_per_user_hour <= 0:
            raise ValueError("requests_per_user_hour must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.day_length <= 0:
            raise ValueError("day_length must be positive")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1")
        if self.mean_burst_every <= 0 or self.mean_burst_length <= 0:
            raise ValueError("burst timing parameters must be positive")
        if self.surge_multiplier < 1.0:
            raise ValueError("surge_multiplier must be >= 1")
        if self.surge_start >= 0 and self.surge_length <= 0:
            raise ValueError("surge_length must be positive when a "
                             "surge is scheduled")
        if not self.priority_weights or \
                any(w < 0 for w in self.priority_weights) or \
                sum(self.priority_weights) <= 0:
            raise ValueError("priority_weights must be non-negative "
                             "with a positive sum")

    @property
    def base_rate(self) -> float:
        """Population-wide mean arrival rate (req/s) at the midpoint."""
        return self.users * self.requests_per_user_hour / 3600.0

    @property
    def peak_rate(self) -> float:
        """λmax: the thinning envelope (every multiplier at its worst)."""
        return (self.base_rate * (1.0 + self.diurnal_amplitude)
                * self.burst_multiplier * self.surge_multiplier)

    def rate(self, t: float, bursting: bool) -> float:
        """λ(t): instantaneous arrival rate ``t`` seconds into the run."""
        lam = self.base_rate * (
            1.0 + self.diurnal_amplitude
            * math.sin(2.0 * math.pi * t / self.day_length))
        if bursting:
            lam *= self.burst_multiplier
        if self.surge_start >= 0 and \
                self.surge_start <= t < self.surge_start + self.surge_length:
            lam *= self.surge_multiplier
        return lam


class TrafficGenerator:
    """One seeded arrival process feeding ``gateway.submit`` open-loop."""

    def __init__(self, sim: Any, rng: Any, model: TrafficModel,
                 submit: Callable[..., Any], duration: float):
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.sim = sim
        self.rng = rng
        self.model = model
        self.submit = submit
        self.duration = duration
        self.arrivals = 0
        self.accepted = 0
        self.by_priority: Dict[int, int] = {}
        self._bursting = False
        self._next_toggle = 0.0
        self._proc = None
        # normalised cumulative priority distribution
        total = sum(model.priority_weights)
        acc = 0.0
        self._cum_weights = []
        for w in model.priority_weights:
            acc += w / total
            self._cum_weights.append(acc)

    def start(self) -> None:
        """Launch the arrival process (idempotent)."""
        if self._proc is None:
            self._proc = self.sim.process(self._run(),
                                          name="service-traffic")

    # -- the arrival process --------------------------------------------------
    def _run(self):
        model, rng = self.model, self.rng
        t0 = self.sim.now
        end = t0 + self.duration
        lam_max = model.peak_rate
        self._next_toggle = t0 + float(rng.exponential(
            model.mean_burst_every))
        while True:
            gap = float(rng.exponential(1.0 / lam_max))
            if self.sim.now + gap >= end:
                break
            yield self.sim.timeout(gap)
            now = self.sim.now
            self._advance_bursts(now)
            lam = model.rate(now - t0, self._bursting)
            if float(rng.random()) >= lam / lam_max:
                continue  # thinned candidate
            self.arrivals += 1
            user = f"user-{int(rng.integers(model.users)):07d}"
            priority = self._draw_priority()
            self.by_priority[priority] = self.by_priority.get(priority, 0) + 1
            if self.submit(user=user, priority=priority):
                self.accepted += 1

    def _advance_bursts(self, now: float) -> None:
        if self.model.burst_multiplier <= 1.0:
            return
        while now >= self._next_toggle:
            self._bursting = not self._bursting
            dwell = (self.model.mean_burst_length if self._bursting
                     else self.model.mean_burst_every)
            self._next_toggle += float(self.rng.exponential(dwell))

    def _draw_priority(self) -> int:
        u = float(self.rng.random())
        for priority, cum in enumerate(self._cum_weights):
            if u < cum:
                return priority
        return len(self._cum_weights) - 1

    def stats(self) -> Dict[str, Any]:
        return {
            "arrivals": self.arrivals,
            "accepted": self.accepted,
            "by_priority": {str(k): v
                            for k, v in sorted(self.by_priority.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<TrafficGenerator users={self.model.users} "
                f"arrivals={self.arrivals}>")
