"""WorkerPool: N seeded daemons draining the queue into placements.

Each worker is a generator process on the sim kernel.  Its loop:

1. pop the highest-priority request (idle-poll every ``poll_interval``
   virtual seconds when the backlog is empty),
2. drive :meth:`~repro.scheduler.base.Scheduler.run` for it — each
   worker owns its *own* scheduler instance built from a dedicated
   ``("service", "sched", i)`` RNG stream, so concurrent workers stay
   deterministic,
3. on a transient miss, retry up to ``max_attempts`` times with seeded
   jittered backoff (``retry_backoff × U[1, 1.5)`` from the
   ``("service", "retry", i)`` stream),
4. report the terminal outcome through
   :meth:`~repro.service.gateway.RequestGateway.finish` and record a
   per-worker ``service.worker`` span.

``Scheduler.run`` advances virtual time internally (Transport invokes
are reentrant ``run_until`` calls, which the kernel explicitly
supports), so a placement made from inside a worker process costs the
same simulated seconds it would cost from a campaign loop.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..errors import LegionError
from ..scheduler.base import ObjectClassRequest
from .config import ServiceConfig
from .gateway import RequestGateway
from .queue import PlacementQueue
from .request import FAILED, PLACED, PLACING

__all__ = ["WorkerPool"]


class WorkerPool:
    """Seeded worker daemons between the placement queue and the Scheduler."""

    def __init__(self, sim: Any, queue: PlacementQueue,
                 gateway: RequestGateway, app: Any, config: ServiceConfig,
                 scheduler_factory: Callable[[int], Any],
                 rng_factory: Callable[[int], Any],
                 metrics: Any = None, spans: Any = None):
        self.sim = sim
        self.queue = queue
        self.gateway = gateway
        self.app = app
        self.config = config
        self.metrics = metrics
        self.spans = spans
        self.size = config.workers
        self.schedulers = [scheduler_factory(i) for i in range(self.size)]
        self._retry_rngs = [rng_factory(i) for i in range(self.size)]
        self._stopped = False
        self._busy_now = 0
        self._busy_time: List[float] = [0.0] * self.size
        self.handled: List[int] = [0] * self.size
        self.placed = 0
        self.failed = 0
        self.retries = 0
        self._started_at: Optional[float] = None
        self._processes: List[Any] = []
        if metrics is not None:
            metrics.gauge_fn("service_workers_busy",
                             lambda: float(self._busy_now),
                             help="workers currently driving a placement")
            metrics.gauge_fn("service_worker_busy_fraction",
                             lambda: self.busy_fraction,
                             help="pool-wide fraction of wall time spent "
                                  "placing since start()")

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Launch one daemon process per worker (idempotent)."""
        if self._processes:
            return
        self._started_at = self.sim.now
        self._stopped = False
        for i in range(self.size):
            self._processes.append(
                self.sim.process(self._worker(i), name=f"service-worker-{i}"))

    def stop(self) -> None:
        """Ask every worker to exit after its current request."""
        self._stopped = True

    @property
    def busy_fraction(self) -> float:
        if self._started_at is None:
            return 0.0
        elapsed = self.sim.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return sum(self._busy_time) / (self.size * elapsed)

    def stats(self) -> Dict[str, Any]:
        return {
            "workers": self.size,
            "handled": sum(self.handled),
            "placed": self.placed,
            "failed": self.failed,
            "retries": self.retries,
            "busy_fraction": self.busy_fraction,
        }

    # -- the daemon -----------------------------------------------------------
    def _worker(self, idx: int):
        cfg = self.config
        scheduler = self.schedulers[idx]
        rng = self._retry_rngs[idx]
        while not self._stopped:
            request = self.queue.pop()
            if request is None:
                yield self.sim.timeout(cfg.poll_interval)
                continue
            started = self.sim.now
            self._busy_now += 1
            self.handled[idx] += 1
            request.state = PLACING
            request.started_at = started
            request.worker = idx
            ok = False
            detail = ""
            for attempt in range(1, cfg.max_attempts + 1):
                request.attempts = attempt
                try:
                    outcome = scheduler.run(
                        [ObjectClassRequest(self.app, count=request.count)],
                        reservation_duration=cfg.reservation_duration)
                    ok = outcome.ok
                    detail = outcome.detail
                    if ok:
                        request.created = list(outcome.created)
                except LegionError as exc:
                    ok = False
                    detail = str(exc)
                if ok or attempt >= cfg.max_attempts:
                    break
                self.retries += 1
                if self.metrics is not None:
                    self.metrics.count("service_retries_total")
                jitter = 1.0 + 0.5 * float(rng.random())
                yield self.sim.timeout(cfg.retry_backoff * jitter)
            now = self.sim.now
            if ok:
                self.placed += 1
                self.gateway.finish(request, PLACED)
            else:
                self.failed += 1
                self.gateway.finish(request, FAILED, detail=detail)
            if self.spans is not None:
                self.spans.record_span(
                    "service.worker", start=started, end=now,
                    status="ok" if ok else "error", worker=idx,
                    request=request.request_id, attempts=request.attempts)
            self._busy_time[idx] += now - started
            self._busy_now -= 1
            if cfg.dispatch_overhead > 0:
                yield self.sim.timeout(cfg.dispatch_overhead)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<WorkerPool size={self.size} busy={self._busy_now} "
                f"placed={self.placed} failed={self.failed}>")
