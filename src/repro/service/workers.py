"""WorkerPool: N seeded daemons draining the queue into placements.

Each worker is a generator process on the sim kernel.  Its loop:

1. pop the highest-priority request (idle-polling on an *absolute*
   ``poll_interval`` time grid when the backlog is empty, so a worker
   recreated mid-run — checkpoint/restore, chaos revival — falls back
   into exactly the poll schedule its predecessor kept; each worker's
   grid is phase-staggered by index so no two workers wake at the same
   instant and claim order never depends on event-heap history),
2. honour a pending cancel at claim time (a request cancelled after the
   pop but before ``Scheduler.run`` starts finishes CANCELLED instead of
   being placed anyway),
3. claim the request under a TTL lease (recovery layer on) renewed by a
   heartbeat callback every ``heartbeat_interval`` virtual seconds,
4. drive :meth:`~repro.scheduler.base.Scheduler.run` for it — each
   worker owns its *own* scheduler instance built from a dedicated
   ``("service", "sched", i)`` RNG stream, so concurrent workers stay
   deterministic,
5. on a transient miss, retry up to ``max_attempts`` times with backoff
   from a per-worker :class:`~repro.chaos.retry.RetryPolicy` seeded by
   the ``("service", "retry", i)`` stream (delay
   ``retry_backoff × U[0.5, 1.5)``) — per-worker streams keep each
   worker's retry trace deterministic under interleaving changes,
6. report the terminal outcome through
   :meth:`~repro.service.gateway.RequestGateway.finish` and record a
   per-worker ``service.worker`` span.

**Crash protocol** (driven by the ``worker_crash`` chaos fault): the
kernel cannot interrupt a generator that is mid-``Scheduler.run`` on the
Python stack, so :meth:`WorkerPool.kill` sets a dead flag the worker
checks at every resume point.  A dead worker *abandons* its request
without finishing it — if the placement had already enacted, the
:class:`SchedulingOutcome` is deposited on the lease so the Supervisor
can destroy the zombie instances (no duplicate placements) — and the
orphaned request is recovered through lease expiry.
:meth:`WorkerPool.revive` starts a fresh generator under a bumped
generation number; stale resumes of the old generator exit silently.

``Scheduler.run`` advances virtual time internally (Transport invokes
are reentrant ``run_until`` calls, which the kernel explicitly
supports), so a placement made from inside a worker process costs the
same simulated seconds it would cost from a campaign loop.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..chaos.retry import RetryPolicy
from ..errors import ChaosError, LegionError
from ..scheduler.base import ObjectClassRequest
from ..sim.kernel import grid_delay
from .config import ServiceConfig
from .gateway import RequestGateway
from .queue import PlacementQueue
from .request import CANCELLED, FAILED, PLACED, PLACING

__all__ = ["WorkerPool"]


class WorkerPool:
    """Seeded worker daemons between the placement queue and the Scheduler."""

    def __init__(self, sim: Any, queue: PlacementQueue,
                 gateway: RequestGateway, app: Any, config: ServiceConfig,
                 scheduler_factory: Callable[[int], Any],
                 rng_factory: Callable[[int], Any],
                 metrics: Any = None, spans: Any = None,
                 leases: Any = None, journal: Any = None,
                 heartbeat_interval: float = 0.0):
        self.sim = sim
        self.queue = queue
        self.gateway = gateway
        self.app = app
        self.config = config
        self.metrics = metrics
        self.spans = spans
        self.size = config.workers
        self.schedulers = [scheduler_factory(i) for i in range(self.size)]
        self._retry_rngs = [rng_factory(i) for i in range(self.size)]
        #: per-worker seeded backoff policies (multiplier 1: the service
        #: retries on a fixed jittered backoff, not an exponential one)
        self.retry_policies = [
            RetryPolicy(max_attempts=config.max_attempts,
                        base_delay=config.retry_backoff,
                        multiplier=1.0, max_delay=config.retry_backoff,
                        jitter=0.5, rng=self._retry_rngs[i])
            for i in range(self.size)]
        #: per-worker idle-poll phases: worker ``i`` wakes on the grid
        #: ``k*poll_interval + (i+1)*poll_interval/(size+1)``, so no two
        #: workers (and no daemon on the unshifted integer grid —
        #: Supervisor, checkpoint probe) ever wake at the same instant.
        #: Which idle worker claims a queued request is then a function
        #: of absolute time alone, independent of event-heap insertion
        #: order — without this, a restored pool (daemons recreated in
        #: index order) can resolve same-instant wake ties differently
        #: from the pool it replaced and break restore byte-identity.
        self._poll_phase = [
            (i + 1) * config.poll_interval / (self.size + 1)
            for i in range(self.size)]
        #: recovery wiring (None without the recovery layer)
        self.leases = leases
        self.journal = journal
        self.heartbeat_interval = float(heartbeat_interval)
        self._stopped = False
        self._busy_now = 0
        self._busy_time: List[float] = [0.0] * self.size
        self._dead: List[bool] = [False] * self.size
        self._generation: List[int] = [0] * self.size
        self._idle: List[bool] = [False] * self.size
        self.handled: List[int] = [0] * self.size
        self.placed = 0
        self.failed = 0
        self.retries = 0
        self.kills = 0
        self.revivals = 0
        self.abandons = 0
        self._started_at: Optional[float] = None
        self._processes: List[Any] = []
        if metrics is not None:
            metrics.gauge_fn("service_workers_busy",
                             lambda: float(self._busy_now),
                             help="workers currently driving a placement")
            metrics.gauge_fn("service_worker_busy_fraction",
                             lambda: self.busy_fraction,
                             help="pool-wide fraction of wall time spent "
                                  "placing since start()")

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Launch one daemon process per worker (idempotent)."""
        if self._processes:
            return
        if self._started_at is None:
            self._started_at = self.sim.now
        self._stopped = False
        for i in range(self.size):
            self._processes.append(
                self.sim.process(self._worker(i, self._generation[i]),
                                 name=f"service-worker-{i}"))

    def stop(self) -> None:
        """Ask every worker to exit after its current request."""
        self._stopped = True

    def shutdown(self) -> None:
        """Tear the pool down for checkpoint/restore: stop, and bump
        every generation so stale pending resumes exit without touching
        the queue a successor pool now owns."""
        self._stopped = True
        for i in range(self.size):
            self._generation[i] += 1

    # -- crash / revive (the worker_crash chaos fault) ------------------------
    def kill(self, idx: int) -> None:
        """Crash worker ``idx``: it abandons its current request at the
        next resume point and its lease is left to expire."""
        if not 0 <= idx < self.size:
            raise ChaosError(f"no worker {idx} (pool size {self.size})")
        if self._dead[idx]:
            raise ChaosError(f"worker {idx} is already dead")
        self._dead[idx] = True
        self._idle[idx] = False
        self.kills += 1
        if self.metrics is not None:
            self.metrics.count("recovery_worker_kills_total")

    def revive(self, idx: int) -> None:
        """Bring worker ``idx`` back as a fresh generator process."""
        if not 0 <= idx < self.size:
            raise ChaosError(f"no worker {idx} (pool size {self.size})")
        if not self._dead[idx]:
            raise ChaosError(f"worker {idx} is already up")
        self._dead[idx] = False
        self._generation[idx] += 1
        self.revivals += 1
        generation = self._generation[idx]
        self._processes.append(
            self.sim.process(self._worker(idx, generation),
                             name=f"service-worker-{idx}g{generation}"))

    @property
    def dead_workers(self) -> List[int]:
        return [i for i in range(self.size) if self._dead[i]]

    @property
    def quiescent(self) -> bool:
        """True when every worker is alive and idle-polling on the grid
        — the only state a checkpoint may be captured in (a restored
        pool restarts its daemons in exactly this state)."""
        return (self._busy_now == 0 and not any(self._dead)
                and all(self._idle))

    @property
    def busy_fraction(self) -> float:
        if self._started_at is None:
            return 0.0
        elapsed = self.sim.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return sum(self._busy_time) / (self.size * elapsed)

    def stats(self) -> Dict[str, Any]:
        return {
            "workers": self.size,
            "handled": sum(self.handled),
            "placed": self.placed,
            "failed": self.failed,
            "retries": self.retries,
            "kills": self.kills,
            "revivals": self.revivals,
            "abandons": self.abandons,
            "busy_fraction": self.busy_fraction,
        }

    # -- checkpoint -----------------------------------------------------------
    def counters(self) -> Dict[str, Any]:
        return {
            "handled": list(self.handled),
            "placed": self.placed,
            "failed": self.failed,
            "retries": self.retries,
            "kills": self.kills,
            "revivals": self.revivals,
            "abandons": self.abandons,
            "busy_time": list(self._busy_time),
            "started_at": self._started_at,
            "generation": list(self._generation),
        }

    def restore_counters(self, doc: Dict[str, Any]) -> None:
        self.handled = list(doc["handled"])
        self.placed = doc["placed"]
        self.failed = doc["failed"]
        self.retries = doc["retries"]
        self.kills = doc["kills"]
        self.revivals = doc["revivals"]
        self.abandons = doc["abandons"]
        self._busy_time = list(doc["busy_time"])
        self._started_at = doc["started_at"]

    # -- the daemon -----------------------------------------------------------
    def _worker(self, idx: int, generation: int):
        cfg = self.config
        scheduler = self.schedulers[idx]
        policy = self.retry_policies[idx]
        sim = self.sim
        while True:
            if (self._stopped or self._dead[idx]
                    or self._generation[idx] != generation):
                return
            request = self.queue.pop()
            if request is None:
                self._idle[idx] = True
                yield sim.timeout(grid_delay(sim.now, cfg.poll_interval,
                                             phase=self._poll_phase[idx]))
                continue
            self._idle[idx] = False
            if request.cancel_requested:
                # claim-time cancel check: the request was cancelled
                # between enqueue and this pop — honour it instead of
                # placing it anyway
                self.gateway.finish(request, CANCELLED,
                                    detail="cancelled at claim")
                continue
            started = sim.now
            self._busy_now += 1
            self.handled[idx] += 1
            request.state = PLACING
            request.started_at = started
            request.worker = idx
            if self.journal is not None:
                self.journal.record("claim", request.request_id, worker=idx)
            lease = None
            if self.leases is not None:
                lease = self.leases.grant(request.request_id, idx, started)
                self._schedule_heartbeat(lease, idx, generation)
            ok = False
            cancelled = False
            detail = ""
            for attempt in range(1, cfg.max_attempts + 1):
                if request.cancel_requested:
                    cancelled = True
                    break
                request.attempts = attempt
                if self.journal is not None:
                    self.journal.record("attempt", request.request_id,
                                        attempt=attempt)
                outcome = None
                try:
                    outcome = scheduler.run(
                        [ObjectClassRequest(self.app, count=request.count)],
                        reservation_duration=cfg.reservation_duration)
                    ok = outcome.ok
                    detail = outcome.detail
                except LegionError as exc:
                    ok = False
                    detail = str(exc)
                if (self._dead[idx]
                        or self._generation[idx] != generation):
                    # killed mid-placement: deposit enacted effects on
                    # the lease for the Supervisor's reaper, then die
                    # without reporting — the lease expiry recovers the
                    # orphan
                    if lease is not None and outcome is not None \
                            and outcome.ok:
                        self.leases.deposit_effects(lease, outcome)
                    self._abandon(idx, started)
                    return
                if ok:
                    # stringified: request records are serialized (journal,
                    # checkpoint); the raw LOIDs stay on the outcome
                    request.created = [str(l) for l in outcome.created]
                    break
                if attempt >= cfg.max_attempts:
                    break
                self.retries += 1
                if self.metrics is not None:
                    self.metrics.count("service_retries_total")
                yield sim.timeout(policy.backoff(attempt))
                if (self._dead[idx]
                        or self._generation[idx] != generation):
                    self._abandon(idx, started)
                    return
            now = sim.now
            if lease is not None:
                self.leases.release(lease, now)
            if cancelled:
                self.gateway.finish(request, CANCELLED,
                                    detail="cancelled before retry")
            elif ok:
                self.placed += 1
                self.gateway.finish(request, PLACED)
            else:
                self.failed += 1
                self.gateway.finish(request, FAILED, detail=detail)
            if self.spans is not None:
                self.spans.record_span(
                    "service.worker", start=started, end=now,
                    status="ok" if ok else "error", worker=idx,
                    request=request.request_id, attempts=request.attempts)
            self._busy_time[idx] += now - started
            self._busy_now -= 1
            if cfg.dispatch_overhead > 0:
                yield sim.timeout(cfg.dispatch_overhead)

    def _abandon(self, idx: int, started: float) -> None:
        """Bookkeeping for a worker dying with a request in hand."""
        now = self.sim.now
        self._busy_time[idx] += now - started
        self._busy_now -= 1
        self.abandons += 1
        if self.metrics is not None:
            self.metrics.count("recovery_worker_abandons_total")

    def _schedule_heartbeat(self, lease: Any, idx: int,
                            generation: int) -> None:
        """Renew ``lease`` every ``heartbeat_interval`` while the worker
        lives and still owns the request; a dead worker's beats stop, so
        the lease runs out its TTL and the Supervisor takes over."""
        interval = self.heartbeat_interval
        if interval <= 0 or self.leases is None:
            return

        def beat() -> None:
            if (self._stopped or self._dead[idx]
                    or self._generation[idx] != generation):
                return
            if not self.leases.is_active(lease):
                return
            self.leases.renew(lease, self.sim.now)
            self.sim.schedule(interval, beat)

        self.sim.schedule(interval, beat)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<WorkerPool size={self.size} busy={self._busy_now} "
                f"placed={self.placed} failed={self.failed} "
                f"dead={self.dead_workers}>")
