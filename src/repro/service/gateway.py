"""RequestGateway: the typed front door of the live service tier.

Four routes — ``submit`` / ``status`` / ``cancel`` / ``health`` — each
returning a :class:`~repro.service.request.RouteResult`.  Submission
passes two layers of protection before a request reaches the backlog:

1. **front-door admission** (:class:`ServiceAdmission`) reuses the
   guardrails admission semantics — a load ceiling over the testbed's
   mean machine load, raising
   :class:`~repro.errors.AdmissionRejected` exactly like the Host-side
   :class:`~repro.guardrails.admission.AdmissionController` does;
2. **bounded-backlog backpressure**: a full
   :class:`~repro.service.queue.PlacementQueue` sheds, rejects, or
   defers the request per the configured mode.  Deferred requests are
   re-offered by the gateway after ``defer_delay`` virtual seconds, at
   most ``max_defers`` times, then shed.

Every request — including shed and rejected ones — stays in the
gateway's registry, so ``status`` answers for it forever: *counted, not
lost*.  The gateway is also the single place terminal outcomes are
recorded (workers call :meth:`RequestGateway.finish`), which keeps the
outcome counters, the e2e latency histogram, and the per-request spans
consistent with each other.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import AdmissionRejected
from .config import ServiceConfig
from .queue import PlacementQueue
from .request import (
    CANCELLED,
    DEFERRED,
    FAILED,
    PLACED,
    PLACING,
    QUEUED,
    REJECTED,
    SHED,
    RouteResult,
    ServiceRequest,
)

__all__ = ["RequestGateway", "ServiceAdmission"]


class ServiceAdmission:
    """Front-door load shedding, mirroring the guardrails controller.

    Where :class:`~repro.guardrails.admission.AdmissionController`
    guards one host at reservation time, this guards the whole service
    at submit time: past ``load_limit`` mean machine load, new work is
    refused outright rather than queued onto an already-drowning
    testbed.
    """

    def __init__(self, load_limit: Optional[float] = None,
                 metrics: Any = None):
        if load_limit is not None and load_limit <= 0:
            raise ValueError("load_limit must be positive (or None)")
        self.load_limit = load_limit
        self.metrics = metrics
        self.rejections = 0

    def check(self, hosts: List[Any], now: float) -> None:
        """Raise :class:`AdmissionRejected` if the service should refuse."""
        if self.load_limit is None or not hosts:
            return
        load = sum(h.machine.load_average for h in hosts) / len(hosts)
        if load > self.load_limit:
            self.rejections += 1
            if self.metrics is not None:
                self.metrics.count("service_admission_rejected_total",
                                   reason="load")
            raise AdmissionRejected(
                f"service: mean load {load:.2f} exceeds limit "
                f"{self.load_limit:.2f}")

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ServiceAdmission load_limit={self.load_limit} "
                f"rejections={self.rejections}>")


class RequestGateway:
    """Typed submit/status/cancel/health routes over the placement queue."""

    def __init__(self, sim: Any, queue: PlacementQueue,
                 config: ServiceConfig, metrics: Any = None,
                 spans: Any = None, hosts: Optional[List[Any]] = None,
                 journal: Any = None):
        self.sim = sim
        self.queue = queue
        self.config = config
        self.metrics = metrics
        self.spans = spans
        self.hosts = hosts if hosts is not None else []
        self.admission = ServiceAdmission(config.load_limit, metrics)
        self.requests: Dict[str, ServiceRequest] = {}
        self.submitted = 0
        #: optional write-ahead RequestJournal (recovery layer)
        self.journal = journal

    # -- routes ---------------------------------------------------------------
    def submit(self, user: str, count: int = 1, priority: int = 0,
               work: Optional[float] = None) -> RouteResult:
        """Admit a placement request; returns its id and initial state."""
        self._route("submit")
        now = self.sim.now
        request = ServiceRequest(
            request_id=f"req-{self.submitted:06d}", user=user, count=count,
            priority=priority, work=work, submitted_at=now)
        self.submitted += 1
        self.requests[request.request_id] = request
        if self.journal is not None:
            self.journal.record("submit", request.request_id, user=user,
                                count=count, priority=priority, work=work)
        try:
            self.admission.check(self.hosts, now)
        except AdmissionRejected as exc:
            if self.journal is not None:
                self.journal.record("admission_rej", request.request_id)
            self.finish(request, REJECTED, detail=str(exc))
            return RouteResult("submit", False, request.request_id,
                               REJECTED, detail=str(exc))
        return self._offer(request)

    def status(self, request_id: str) -> RouteResult:
        """Look up any request ever submitted — terminal ones included."""
        self._route("status")
        request = self.requests.get(request_id)
        if request is None:
            return RouteResult("status", False, request_id,
                               detail="unknown request")
        return RouteResult("status", True, request_id, request.state,
                           detail=request.detail,
                           snapshot=request.to_dict())

    def cancel(self, request_id: str) -> RouteResult:
        """Withdraw a request that has not started placing yet.

        A request a worker has already popped (the queue no longer holds
        it, or its state is PLACING) is *not* finished here — doing so
        would race the worker, which still believes it owns the request
        and would place it anyway.  Instead ``cancel_requested`` is set
        and the worker honours it at its next claim-time check (before
        the first ``Scheduler.run`` and before every retry), finishing
        the request CANCELLED itself.
        """
        self._route("cancel")
        request = self.requests.get(request_id)
        if request is None:
            return RouteResult("cancel", False, request_id,
                               detail="unknown request")
        if request.state == QUEUED:
            if self.queue.cancel(request_id):
                self.finish(request, CANCELLED,
                            detail="cancelled while queued")
                return RouteResult("cancel", True, request_id, CANCELLED)
            # popped by a worker but not yet marked PLACING: flag it for
            # the worker's claim-time check instead of racing it
            return self._flag_cancel(request)
        if request.state == DEFERRED:
            self.finish(request, CANCELLED, detail="cancelled while deferred")
            return RouteResult("cancel", True, request_id, CANCELLED)
        if request.state == PLACING:
            return self._flag_cancel(request)
        return RouteResult(
            "cancel", False, request_id, request.state,
            detail=f"not cancellable in state {request.state!r}")

    def _flag_cancel(self, request: ServiceRequest) -> RouteResult:
        request.cancel_requested = True
        if self.journal is not None:
            self.journal.record("cancel_flag", request.request_id)
        return RouteResult(
            "cancel", True, request.request_id, request.state,
            detail="cancel pending: claimed by a worker; honoured at its "
                   "next claim-time check")

    def health(self) -> Dict[str, Any]:
        """Liveness snapshot: backlog, outcomes, admission, clock."""
        self._route("health")
        by_state: Dict[str, int] = {}
        for request in self.requests.values():
            by_state[request.state] = by_state.get(request.state, 0) + 1
        return {
            "now": self.sim.now,
            "submitted": self.submitted,
            "queue": self.queue.stats(),
            "requests_by_state": dict(sorted(by_state.items())),
            "admission_rejections": self.admission.rejections,
        }

    # -- backpressure ---------------------------------------------------------
    def _offer(self, request: ServiceRequest) -> RouteResult:
        disposition = self.queue.offer(request)
        now = self.sim.now
        if disposition == "enqueued":
            request.state = QUEUED
            request.enqueued_at = now
            if self.journal is not None:
                self.journal.record("enqueue", request.request_id)
            return RouteResult("submit", True, request.request_id, QUEUED)
        if disposition == "deferred":
            request.state = DEFERRED
            request.defers += 1
            if self.journal is not None:
                self.journal.record("defer", request.request_id,
                                    defers=request.defers)
            self.sim.schedule(self.config.defer_delay,
                              lambda: self._reoffer(request))
            return RouteResult("submit", True, request.request_id, DEFERRED,
                               detail=f"backlog full; retrying in "
                                      f"{self.config.defer_delay:g}s")
        if disposition == "rejected":
            self.finish(request, REJECTED, detail="backlog full")
            return RouteResult("submit", False, request.request_id,
                               REJECTED, detail="backlog full")
        self.finish(request, SHED, detail="backlog full")
        return RouteResult("submit", False, request.request_id, SHED,
                           detail="backlog full")

    def _reoffer(self, request: ServiceRequest) -> None:
        if request.state != DEFERRED:  # cancelled in the meantime
            return
        out_of_defers = request.defers >= self.config.max_defers
        disposition = self.queue.offer(request, final=out_of_defers)
        if disposition == "enqueued":
            request.state = QUEUED
            request.enqueued_at = self.sim.now
            if self.journal is not None:
                self.journal.record("enqueue", request.request_id)
        elif disposition == "deferred":
            request.defers += 1
            if self.journal is not None:
                self.journal.record("defer", request.request_id,
                                    defers=request.defers)
            self.sim.schedule(self.config.defer_delay,
                              lambda: self._reoffer(request))
        else:  # shed (final) or rejected
            self.finish(request, SHED if disposition == "shed" else REJECTED,
                        detail=f"backlog still full after "
                               f"{request.defers} defers")

    # -- terminal bookkeeping -------------------------------------------------
    def finish(self, request: ServiceRequest, state: str,
               detail: str = "") -> None:
        """Move ``request`` to a terminal state; the only place outcome
        counters, the e2e histogram, and request spans are emitted."""
        now = self.sim.now
        request.state = state
        request.finished_at = now
        if detail:
            request.detail = detail
        if self.journal is not None:
            self.journal.record("finish", request.request_id, state=state,
                                detail=request.detail,
                                created=list(request.created))
        if self.metrics is not None:
            self.metrics.count("service_request_outcomes_total",
                               outcome=state)
        if state in (PLACED, FAILED):
            e2e = now - request.submitted_at
            if self.metrics is not None and state == PLACED:
                self.metrics.observe("service_e2e_seconds", e2e)
            if self.spans is not None:
                self.spans.record_span(
                    "service.request", start=request.submitted_at, end=now,
                    status="ok" if state == PLACED else "error",
                    request=request.request_id, user=request.user,
                    outcome=state, priority=request.priority,
                    worker=request.worker, attempts=request.attempts)

    def requeue(self, request: ServiceRequest, reason: str = "") -> None:
        """Put a recovered orphan back in the queue (Supervisor path).

        Honours a pending cancel first — an orphan whose user cancelled
        while it was stranded finishes CANCELLED instead of being placed
        posthumously.  Otherwise the request re-enters the backlog via
        the cap-bypassing :meth:`PlacementQueue.requeue` (an admitted
        request is never shed on its way back from a crash).
        """
        if request.cancel_requested:
            self.finish(request, CANCELLED,
                        detail="cancelled during crash recovery")
            return
        request.requeues += 1
        request.worker = None
        self.queue.requeue(request)
        request.state = QUEUED
        request.enqueued_at = self.sim.now
        if self.journal is not None:
            self.journal.record("requeue", request.request_id,
                                requeues=request.requeues, reason=reason)

    def _route(self, route: str) -> None:
        if self.metrics is not None:
            self.metrics.count("service_requests_total", route=route)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<RequestGateway submitted={self.submitted} "
                f"queue={self.queue.depth}>")
