"""ServiceConfig: the knobs of the live service tier.

One frozen dataclass configures all three service components (gateway,
queue, worker pool) so :meth:`~repro.metasystem.Metasystem.start_service`
and ``TestbedSpec(service=...)`` take a single value, mirroring
``GuardrailConfig`` / ``EconomyConfig``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ServiceConfig", "BACKPRESSURE_MODES"]

#: how the queue responds when the bounded backlog is full
BACKPRESSURE_MODES = ("shed", "reject", "defer")


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration for one live service tier."""

    #: worker daemons draining the placement queue
    workers: int = 4
    #: bounded backlog: queued requests past this are shed/rejected/
    #: deferred (0 = unbounded — shedding off, the overload baseline)
    queue_cap: int = 64
    #: what happens to a submit that finds the backlog full
    backpressure: str = "shed"
    #: virtual seconds a deferred request waits before re-offering
    defer_delay: float = 15.0
    #: re-offers before a deferred request is shed anyway
    max_defers: int = 3
    #: front-door load shedding: mean machine load past which the
    #: gateway refuses new work outright (None disables; reuses the
    #: guardrails admission semantics)
    load_limit: Optional[float] = None
    #: scheduler kind each worker drives (``Metasystem.make_scheduler``)
    scheduler: str = "irs"
    #: work units per placed instance of the service app class
    work: float = 10.0
    #: reservation duration passed to ``Scheduler.run``.  Reservations
    #: occupy their whole window even after the job completes, so the
    #: service's sustained capacity is ``total_slots / this`` — size it
    #: to the job (default: generous for a 10-work-unit job) or the
    #: testbed saturates at its slot count
    reservation_duration: float = 30.0
    #: idle worker poll interval in virtual seconds
    poll_interval: float = 1.0
    #: virtual seconds of per-request dispatch bookkeeping
    dispatch_overhead: float = 1.0
    #: placement attempts per request before it fails (retry-on-transient)
    max_attempts: int = 3
    #: base backoff between placement attempts (virtual seconds; each
    #: retry draws jitter in [0.5, 1.5) from the worker's own seeded
    #: ``("service", "retry", i)`` RetryPolicy stream, so per-worker
    #: retry traces stay deterministic under interleaving changes)
    retry_backoff: float = 5.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_cap < 0:
            raise ValueError("queue_cap must be >= 0 (0 = unbounded)")
        if self.backpressure not in BACKPRESSURE_MODES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_MODES}, "
                f"got {self.backpressure!r}")
        if self.defer_delay <= 0:
            raise ValueError("defer_delay must be positive")
        if self.max_defers < 0:
            raise ValueError("max_defers must be >= 0")
        if self.load_limit is not None and self.load_limit <= 0:
            raise ValueError("load_limit must be positive (or None)")
        if self.work <= 0:
            raise ValueError("work must be positive")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.dispatch_overhead < 0:
            raise ValueError("dispatch_overhead must be >= 0")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")

    @property
    def shedding_enabled(self) -> bool:
        """A bounded backlog is what makes backpressure possible."""
        return self.queue_cap > 0
