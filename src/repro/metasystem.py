"""The Metasystem facade: bootstrap and wiring for a simulated Legion system.

This is the library's main entry point.  It assembles the substrate
(simulator, RNG streams, topology, transport), the core objects (Fig. 1:
LegionClass-style minting, Host and Vault objects and their guardian
classes), and the RMI service objects (Collection, Enactor, Monitor), and
binds everything into a context space.

Typical use::

    from repro import Metasystem, MachineSpec

    meta = Metasystem(seed=42)
    meta.add_domain("uva")
    for i in range(8):
        meta.add_unix_host(f"uva-ws{i}", "uva", MachineSpec(arch="sparc",
                                                            os_name="SunOS"))
    meta.add_vault("uva")
    app = meta.create_class("MyApp", [Implementation("sparc", "SunOS")],
                            work_units=300.0)
    scheduler = meta.make_scheduler("random")
    outcome = scheduler.run([ObjectClassRequest(app, count=4)])
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from .collection.collection import Collection, Credential
from .collection.daemon import DataCollectionDaemon
from .enactor.enactor import Enactor
from .errors import LegionError, NotAMemberError, UnknownObjectError
from .federation.ring import ConsistentHashRing
from .federation.router import FederatedCollection, FederationConfig
from .federation.shard import CollectionShard
from .federation.sync import GossipDaemon
from .hosts.batch_host import BatchQueueHost
from .hosts.host_object import HostObject
from .hosts.machine import LoadWalk, MachineSpec, SimMachine
from .hosts.policy import PlacementPolicy
from .hosts.unix_host import UnixHost
from .monitor.migration import Migrator
from .monitor.monitor import ExecutionMonitor
from .accounting.cost_sched import CostAwareScheduler
from .naming.context import ContextSpace
from .naming.loid import LOID, LOIDMinter
from .net.latency import LatencyModel, MetasystemLatencyModel
from .net.topology import AdministrativeDomain, NetLocation, Topology
from .net.transport import Transport
from .objects.base import LegionObject
from .obs.registry import MetricsRegistry
from .obs.spans import NullSpanTracer, SpanTracer
from .objects.class_object import ClassObject, Implementation, Placement
from .queues.backfill import BackfillQueue
from .queues.base import QueueSystem
from .queues.condor import CondorPool
from .queues.fcfs import FCFSQueue
from .scheduler.base import ObjectClassRequest, Scheduler
from .scheduler.gang import GangScheduler
from .scheduler.irs import IRSScheduler
from .scheduler.kofn import KofNScheduler
from .scheduler.load_aware import LoadAwareScheduler
from .scheduler.mct import MCTScheduler
from .scheduler.random_sched import RandomScheduler
from .scheduler.round_robin import RoundRobinScheduler
from .scheduler.stencil import StencilScheduler
from .sim.kernel import Simulator
from .sim.rng import RngRegistry
from .sim.tracing import NullTracer, Tracer
from .vaults.vault_object import VaultObject

__all__ = ["Metasystem"]

_SCHEDULER_KINDS = {
    "random": RandomScheduler,
    "irs": IRSScheduler,
    "cost": CostAwareScheduler,
    "load": LoadAwareScheduler,
    "load-aware": LoadAwareScheduler,
    "mct": MCTScheduler,
    "gang": GangScheduler,
    "round-robin": RoundRobinScheduler,
    "stencil": StencilScheduler,
    "kofn": KofNScheduler,
}


class Metasystem:
    """A fully wired, simulated Legion metasystem."""

    def __init__(self, seed: int = 0,
                 latency_model: Optional[LatencyModel] = None,
                 loss_probability: float = 0.0,
                 reassess_interval: float = 30.0,
                 require_collection_auth: bool = True,
                 domain: str = "legion",
                 trace_max_records: Optional[int] = None,
                 tracing: str = "spans",
                 federation: Any = None,
                 chaos: Any = None,
                 guardrails: Any = None,
                 sampler: Any = None,
                 economy: Any = None,
                 service: Any = None):
        if tracing not in ("off", "flat", "spans"):
            raise ValueError(
                f"tracing must be 'off', 'flat' or 'spans', got {tracing!r}")
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        self.tracing = tracing
        if tracing == "off":
            self.tracer: Tracer = NullTracer()
        else:
            self.tracer = Tracer(lambda: self.sim.now,
                                 max_records=trace_max_records)
        if tracing == "spans":
            self.spans: SpanTracer = SpanTracer(lambda: self.sim.now)
        else:
            self.spans = NullSpanTracer()
        self.metrics = MetricsRegistry(clock=lambda: self.sim.now)
        self.metrics.gauge_fn("sim_events_processed",
                              lambda: self.sim.events_processed,
                              help="kernel actions dispatched so far")
        self.metrics.gauge_fn("sim_queue_depth",
                              lambda: self.sim.queue_depth,
                              help="actions pending on the event heap")
        self.metrics.gauge_fn("tracer_records",
                              lambda: len(self.tracer),
                              help="trace records currently retained")
        self.metrics.gauge_fn("span_records",
                              lambda: len(self.spans),
                              help="spans currently retained")
        if tracing == "spans":
            # flat records become span events; outlier histogram buckets
            # remember which trace produced them (exemplars)
            self.tracer.span_sink = self.spans
            self.metrics.set_exemplar_provider(
                lambda: self.spans.current_trace_id)
        self.topology = Topology()
        self.latency_model = latency_model or MetasystemLatencyModel(
            self.topology)
        self.transport = Transport(self.sim, self.topology,
                                   self.latency_model, self.rngs,
                                   tracer=self.tracer,
                                   loss_probability=loss_probability,
                                   metrics=self.metrics,
                                   spans=self.spans)
        self.minter = LOIDMinter(domain)
        self.context = ContextSpace()
        self.reassess_interval = reassess_interval

        self._registry: Dict[LOID, Any] = {}
        self.hosts: List[HostObject] = []
        self.vaults: List[VaultObject] = []
        self.classes: Dict[str, ClassObject] = {}

        # the information database: one monolithic Collection by default,
        # or — with the ``federation=`` knob — a consistent-hash federation
        # of peer Collection shards behind the same Fig. 4 interface
        self.federation_config = FederationConfig.normalize(federation)
        self.collection_shards: List[CollectionShard] = []
        self.gossip: Optional[GossipDaemon] = None
        if self.federation_config is None:
            self.collection = Collection(
                self.minter.mint("svc", "collection"),
                location=None, require_auth=require_collection_auth,
                clock=lambda: self.sim.now, metrics=self.metrics)
            self.collection.spans = self.spans
        else:
            self.collection = self._build_federation(
                self.federation_config, require_collection_auth)
        self._register(self.collection)
        self.context.bind("/etc/Collection", self.collection.loid)
        self._host_credentials: Dict[LOID, Credential] = {}

        self.enactor = Enactor(self.transport, self.resolve,
                               tracer=self.tracer, metrics=self.metrics)
        self.migrator = Migrator(self.transport, self.resolve)
        self.monitor: Optional[ExecutionMonitor] = None
        self._machine_serial = itertools.count()

        # the chaos knob stores a default campaign source (profile name,
        # CampaignConfig, or ChaosPlan); the injector itself is armed by
        # start_chaos() once hosts exist, since campaign generation needs
        # the topology's target universe
        self.chaos_config = chaos
        self.chaos: Optional[Any] = None

        # the guardrails knob: True enables the self-healing layer with
        # defaults, or pass a GuardrailConfig; hosts added later are
        # wired automatically by _wire_host
        self.guardrails: Optional[Any] = None
        if guardrails:
            if guardrails is True:
                self.enable_guardrails()
            else:
                self.enable_guardrails(config=guardrails)

        # the sampler knob: True arms windowed time-series capture with
        # the default window, a number sets the window length in virtual
        # seconds; off by default so existing benchmark ledgers stay
        # byte-identical
        self.sampler: Optional[Any] = None
        if sampler:
            if sampler is True:
                self.start_sampler()
            else:
                self.start_sampler(window=float(sampler))

        # the economy knob: True enables the computational-economy layer
        # (market pricing, budgets, auctions) with defaults, or pass an
        # EconomyConfig; hosts added later are wired by _wire_host
        self.economy: Optional[Any] = None
        if economy:
            if economy is True:
                self.enable_economy()
            else:
                self.enable_economy(config=economy)

        # the service knob: True starts the live service tier (gateway +
        # placement queue + worker pool) with defaults, or pass a
        # ServiceConfig; usually started via start_service() once hosts
        # exist so the first placements find a populated Collection
        self.service: Optional[Any] = None
        if service:
            if service is True:
                self.start_service()
            else:
                self.start_service(config=service)

    # ------------------------------------------------------------------
    # federation
    # ------------------------------------------------------------------
    def _build_federation(self, cfg: FederationConfig,
                          require_auth: bool) -> FederatedCollection:
        """Assemble shards, ring, router, and (optionally) gossip."""
        ring = ConsistentHashRing(seed=self.rngs.seed, vnodes=cfg.vnodes)
        for i in range(cfg.shards):
            shard_id = f"shard{i}"
            ring.add_shard(shard_id)
            coll = Collection(
                self.minter.mint("svc", f"collection-{shard_id}"),
                location=None, require_auth=require_auth,
                clock=lambda: self.sim.now, metrics=self.metrics)
            coll.spans = self.spans
            shard = CollectionShard(shard_id, coll, ring,
                                    cfg.replication)
            self.collection_shards.append(shard)
            self._register(coll)
            self.context.bind(f"/etc/Collection.{shard_id}", coll.loid)
            self.metrics.gauge(
                "federation_shard_members",
                help="records held per federation shard",
                labelnames=["shard"]).labels(
                    shard=shard_id).set_function(
                        lambda s=shard: float(len(s)))
        router = FederatedCollection(
            self.minter.mint("svc", "collection"),
            self.collection_shards, ring, cfg.replication,
            transport=self.transport, clock=lambda: self.sim.now,
            metrics=self.metrics, require_auth=require_auth,
            cache_ttl=cfg.cache_ttl, shard_timeout=cfg.shard_timeout)
        router.spans = self.spans
        if cfg.gossip_interval > 0:
            self.gossip = GossipDaemon(
                self.sim, self.collection_shards,
                interval=cfg.gossip_interval,
                rng=self.rngs.stream("federation", "gossip"),
                transport=self.transport, metrics=self.metrics,
                spans=self.spans)
            self.gossip.start()
        return router

    def place_federation(self, domains: Optional[Sequence[str]] = None
                         ) -> List[NetLocation]:
        """Give every federation shard a network node (round-robin over
        ``domains``, default all registered domains), so scatter-gather
        queries and replica writes cost real messages and shards can be
        partitioned or taken down through the topology."""
        if self.federation_config is None:
            raise LegionError("metasystem is not federated")
        names = list(domains) if domains else [
            d.name for d in self.topology.domains()]
        if not names:
            raise LegionError("no domains to place shards in")
        locations = []
        for i, shard in enumerate(self.collection_shards):
            location = self.topology.add_node(
                names[i % len(names)], f"collection-{shard.shard_id}")
            shard.location = location
            locations.append(location)
        return locations

    # ------------------------------------------------------------------
    # registry / naming
    # ------------------------------------------------------------------
    def _register(self, obj: Any) -> None:
        self._registry[obj.loid] = obj

    def resolve(self, loid: LOID) -> Any:
        """The system-wide LOID resolver handed to Classes/Enactor/etc."""
        return self._registry.get(loid)

    def resolve_strict(self, loid: LOID) -> Any:
        obj = self._registry.get(loid)
        if obj is None:
            raise UnknownObjectError(f"no object registered for {loid}")
        return obj

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_domain(self, name: str, distance: float = 1.0,
                   description: str = "") -> AdministrativeDomain:
        return self.topology.add_domain(
            AdministrativeDomain(name, description, distance))

    def place_collection(self, domain: str,
                         node_name: str = "collection-svc") -> NetLocation:
        """Give the Collection a network location so queries and updates
        cost real (simulated) messages — required for experiments that
        measure information-service latency (E2, E3, E6)."""
        location = self.topology.add_node(domain, node_name)
        self.collection.location = location
        return location

    def place_enactor(self, domain: str,
                      node_name: str = "enactor-svc") -> NetLocation:
        """Give the Enactor a service location (reservation requests then
        originate from that node rather than a free endpoint)."""
        location = self.topology.add_node(domain, node_name)
        self.enactor.location = location
        self.enactor.coallocator.src = location
        return location

    # ------------------------------------------------------------------
    # hosts
    # ------------------------------------------------------------------
    def _wire_host(self, host: HostObject, push_to_collection: bool) -> None:
        host.metrics = self.metrics
        host.spans = self.spans
        self._register(host)
        self.hosts.append(host)
        self.context.bind(f"/hosts/{host.machine.name}", host.loid)
        # same-domain vaults are compatible by default
        for vault in self.vaults:
            if vault.location.domain == host.domain:
                host.add_compatible_vault(vault.loid)
        host.reassess()
        credential = self.collection.join(host.loid,
                                          host.attributes.snapshot())
        self._host_credentials[host.loid] = credential
        if push_to_collection:
            def push(h: HostObject, now: float,
                     cred: Credential = credential) -> None:
                try:
                    self.collection.update_entry(
                        h.loid, h.attributes.snapshot(), cred)
                except NotAMemberError:
                    # the health-aware daemon evicted the record while the
                    # host was DOWN — recovery re-joins (credentials are
                    # deterministic per member, so ``cred`` stays valid)
                    self.collection.join(h.loid, h.attributes.snapshot())
            host.add_push_target(push)
        if self.guardrails is not None:
            host.admission = self.guardrails.admission
            self.guardrails.monitor.watch(host, credential)
        if self.economy is not None:
            self.economy.ledger.attach(host)
            self.economy.market.enroll(host)
        host.start_periodic_reassessment()

    def add_unix_host(self, name: str, domain: str,
                      spec: Optional[MachineSpec] = None,
                      policy: Optional[PlacementPolicy] = None,
                      load_walk: Optional[LoadWalk] = None,
                      initial_load: float = 0.0,
                      slots: int = 0,
                      price: float = 0.0,
                      push_to_collection: bool = True,
                      load_trigger_level: float = 4.0) -> UnixHost:
        """Create a workstation/SMP machine plus its Unix Host Object."""
        spec = spec or MachineSpec()
        location = self.topology.add_node(domain, name)
        machine = SimMachine(name, spec, location, self.sim, self.rngs,
                             load_walk=load_walk, initial_load=initial_load)
        host = UnixHost(self.minter.mint("host", name), machine, self.sim,
                        policy=policy, slots=slots,
                        price_per_cpu_second=price,
                        reassess_interval=self.reassess_interval,
                        load_trigger_level=load_trigger_level)
        self._wire_host(host, push_to_collection)
        return host

    def add_batch_host(self, name: str, domain: str,
                       queue_kind: str = "fcfs", nodes: int = 16,
                       node_speed: float = 1.0,
                       spec: Optional[MachineSpec] = None,
                       policy: Optional[PlacementPolicy] = None,
                       push_to_collection: bool = True,
                       max_queue_length: int = 1000,
                       **queue_kwargs) -> BatchQueueHost:
        """Create a queue-managed cluster fronted by a Batch Queue Host.

        ``queue_kind``: ``"fcfs"`` (LoadLeveler/Codine-like), ``"backfill"``
        (Maui-like, reservation capable), or ``"condor"`` (cycle-scavenged
        pool).
        """
        spec = spec or MachineSpec(cpus=2, memory_mb=512.0)
        location = self.topology.add_node(domain, name)
        machine = SimMachine(name, spec, location, self.sim, self.rngs)
        queue: QueueSystem
        if queue_kind == "fcfs":
            queue = FCFSQueue(self.sim, nodes, node_speed,
                              name=f"{name}-fcfs", **queue_kwargs)
        elif queue_kind == "backfill":
            queue = BackfillQueue(self.sim, nodes, node_speed,
                                  name=f"{name}-maui", **queue_kwargs)
        elif queue_kind == "condor":
            queue = CondorPool(self.sim, nodes, self.rngs, node_speed,
                               name=f"{name}-condor", **queue_kwargs)
        else:
            raise ValueError(f"unknown queue kind {queue_kind!r}")
        host = BatchQueueHost(self.minter.mint("host", name), machine,
                              self.sim, queue, policy=policy,
                              max_queue_length=max_queue_length,
                              reassess_interval=self.reassess_interval)
        self._wire_host(host, push_to_collection)
        return host

    # ------------------------------------------------------------------
    # vaults
    # ------------------------------------------------------------------
    def add_vault(self, domain: str, name: str = "",
                  capacity_bytes: float = 10e9,
                  cost_per_byte: float = 0.0,
                  allowed_domains: Optional[List[str]] = None
                  ) -> VaultObject:
        """Create a Vault in a domain and make same-domain hosts compatible."""
        name = name or f"{domain}-vault{next(self._machine_serial)}"
        location = self.topology.add_node(domain, name)
        vault = VaultObject(self.minter.mint("vault", name), location,
                            capacity_bytes=capacity_bytes,
                            cost_per_byte=cost_per_byte,
                            allowed_domains=allowed_domains)
        vault.spans = self.spans
        self._register(vault)
        self.vaults.append(vault)
        self.context.bind(f"/vaults/{name}", vault.loid)
        for host in self.hosts:
            if host.domain == domain:
                host.add_compatible_vault(vault.loid)
                host.reassess()
                cred = self._host_credentials.get(host.loid)
                if cred is not None:
                    self.collection.update_entry(
                        host.loid, host.attributes.snapshot(), cred)
        return vault

    # ------------------------------------------------------------------
    # classes
    # ------------------------------------------------------------------
    def create_class(self, name: str,
                     implementations: Sequence[Implementation],
                     work_units: Optional[float] = None,
                     memory_mb: float = 8.0,
                     attr_factory: Optional[
                         Callable[[LOID], Mapping[str, Any]]] = None
                     ) -> ClassObject:
        """Create a Class object whose instances carry workload attributes.

        ``work_units`` makes every instance a finite job of that size;
        ``attr_factory`` may instead compute per-instance attributes (it
        receives the new instance's LOID).
        """
        def factory(loid: LOID, class_loid: LOID) -> LegionObject:
            instance = LegionObject(loid, class_loid)
            if work_units is not None:
                instance.attributes.set("work_units", float(work_units))
            instance.attributes.set("memory_mb", float(memory_mb))
            if attr_factory is not None:
                instance.attributes.update(dict(attr_factory(loid)))
            return instance

        class_obj = ClassObject(
            self.minter.mint("class", name), name, self.minter,
            self.resolve, implementations=list(implementations),
            instance_factory=factory,
            default_placer=self._default_placer)
        # advertise expected resource characteristics on the class itself
        # ("any Scheduler may query the object classes to determine such
        # information", section 3.3)
        if work_units is not None:
            class_obj.attributes.set("work_units", float(work_units))
        class_obj.attributes.set("memory_mb", float(memory_mb))
        self._register(class_obj)
        self.classes[name] = class_obj
        self.context.bind(f"/classes/{name}", class_obj.loid)
        return class_obj

    def _default_placer(self, class_obj: ClassObject,
                        hint: Any) -> Optional[Placement]:
        """The Class's quick, "almost certainly non-optimal" placement
        (section 2.1): a single random viable host from the Collection.

        ``hint`` may be a vault LOID (implicit reactivation passes the
        object's existing vault): candidates are then restricted to hosts
        that can reach it.
        """
        from .scheduler.base import implementation_query
        try:
            query = implementation_query(class_obj.get_implementations())
        except LegionError:
            return None
        records = self.collection.query(query)
        if isinstance(hint, LOID):
            records = [r for r in records
                       if str(hint) in (r.get("compatible_vaults") or [])]
        if not records:
            return None
        rng = self.rngs.stream("class", class_obj.name, "default-placer")
        record = records[int(rng.integers(0, len(records)))]
        if isinstance(hint, LOID):
            return Placement(host_loid=record.member, vault_loid=hint)
        vaults = Scheduler.compatible_vaults_of(record)
        if not vaults:
            return None
        return Placement(host_loid=record.member, vault_loid=vaults[0])

    # ------------------------------------------------------------------
    # RMI services
    # ------------------------------------------------------------------
    def make_scheduler(self, kind: str = "random", **kwargs) -> Scheduler:
        """Instantiate one of the bundled Schedulers, fully wired.

        ``kind="economy"`` (or the explicit ``"economy-cost"`` /
        ``"economy-time"`` spellings) builds an
        :class:`~repro.economy.sched.EconomyScheduler`, enabling the
        economy layer on demand and auto-provisioning the named
        ``user=`` account at the config's default budget/deadline if it
        does not exist yet.
        """
        if kind in ("economy", "economy-cost", "economy-time"):
            from .economy import EconomyScheduler
            suite = self.enable_economy()
            mode = kwargs.pop("mode", None)
            if mode is None:
                mode = "time" if kind == "economy-time" else "cost"
            user = kwargs.pop("user", "default")
            suite.budgets.ensure(user,
                                 budget=suite.config.default_budget,
                                 deadline=suite.config.default_deadline)
            rng = kwargs.pop("rng", None)
            if rng is None:
                rng = self.rngs.stream("scheduler", kind, user)
            kwargs.setdefault("bid_escalation",
                              suite.config.bid_escalation)
            kwargs.setdefault("escalation_onset",
                              suite.config.escalation_onset)
            return EconomyScheduler(
                self.collection, self.enactor, self.transport, rng=rng,
                budgets=suite.budgets, auction=suite.auction,
                market=suite.market, user=user, mode=mode, **kwargs)
        cls = _SCHEDULER_KINDS.get(kind)
        if cls is None:
            raise ValueError(
                f"unknown scheduler kind {kind!r}; choose from "
                f"{sorted([*_SCHEDULER_KINDS, 'economy', 'economy-cost', 'economy-time'])}")
        rng = kwargs.pop("rng", None)
        if rng is None:
            rng = self.rngs.stream("scheduler", kind)
        return cls(self.collection, self.enactor, self.transport,
                   rng=rng, **kwargs)

    def make_daemon(self, interval: float = 60.0,
                    watch_hosts: bool = True,
                    evict_down_after: Optional[float] = None
                    ) -> DataCollectionDaemon:
        daemon = DataCollectionDaemon(
            self.sim, [self.collection], interval=interval,
            rng=self.rngs.stream("daemon"), metrics=self.metrics)
        if self.guardrails is not None:
            # health-aware sweeps: skip DOWN sources and evict their
            # records once DOWN longer than the horizon (default: twice
            # the monitor's down_after threshold)
            horizon = (evict_down_after if evict_down_after is not None
                       else 2.0 * self.guardrails.config.down_after)
            daemon.attach_health(self.guardrails.monitor,
                                 evict_after=horizon)
        if watch_hosts:
            for host in self.hosts:
                daemon.watch(host)
        return daemon

    def make_monitor(self, **kwargs) -> ExecutionMonitor:
        self.monitor = ExecutionMonitor(self.migrator, self.collection,
                                        self.resolve, **kwargs)
        return self.monitor

    # ------------------------------------------------------------------
    # time-series telemetry / SLOs
    # ------------------------------------------------------------------
    def start_sampler(self, window: float = 30.0,
                      max_windows: int = 256) -> Any:
        """Arm the windowed time-series sampler
        (:class:`~repro.obs.timeseries.MetricsSampler`): registry deltas
        are captured every ``window`` virtual seconds into a bounded
        ring, the substrate the SLO engine and ``legion-sim slo``
        evaluate.  The sampler draws no random numbers, so arming it
        never perturbs the seeded streams of an existing scenario."""
        from .obs.timeseries import MetricsSampler
        if self.sampler is not None:
            raise LegionError("a metrics sampler is already armed")
        self.sampler = MetricsSampler(self.sim, self.metrics,
                                      window=window,
                                      max_windows=max_windows).start()
        return self.sampler

    def default_slos(self) -> List[Any]:
        """The stock Legion objectives
        (:func:`~repro.obs.slo.default_legion_slos`)."""
        from .obs.slo import default_legion_slos
        return default_legion_slos()

    def slo_health_report(self, specs: Optional[Sequence[Any]] = None,
                          include_windows: bool = True,
                          title: str = "slo health") -> Dict[str, Any]:
        """Flush the sampler and build the unified health report
        (:func:`~repro.obs.report.build_health_report`) over the given
        objectives (default: :meth:`default_slos`)."""
        from .obs.report import build_health_report
        if self.sampler is None:
            raise LegionError(
                "no metrics sampler armed (construct with "
                "Metasystem(sampler=...) or call start_sampler())")
        self.sampler.flush()
        return build_health_report(
            self.sampler,
            list(specs) if specs is not None else self.default_slos(),
            spans=self.spans.spans, title=title,
            include_windows=include_windows)

    # ------------------------------------------------------------------
    # chaos / resilience
    # ------------------------------------------------------------------
    def start_chaos(self, plan: Any = None, profile: str = "",
                    chaos_seed: int = 0,
                    horizon: Optional[float] = None) -> Any:
        """Generate (if needed) and arm a fault-injection campaign.

        ``plan`` may be a prebuilt :class:`~repro.chaos.plan.ChaosPlan`;
        otherwise a campaign is generated from ``profile`` (a name in
        :data:`repro.chaos.plan.PROFILES` or a
        :class:`~repro.chaos.plan.CampaignConfig`), falling back to the
        constructor's ``chaos=`` knob.  Call after hosts are built —
        campaign generation targets the current topology.  Returns the
        armed :class:`~repro.chaos.injector.ChaosInjector`.
        """
        from .chaos.injector import ChaosInjector
        from .chaos.plan import (
            PROFILES,
            CampaignConfig,
            ChaosPlan,
            generate_campaign,
        )
        if self.chaos is not None:
            raise LegionError("a chaos injector is already armed")
        source = plan if plan is not None else (profile or self.chaos_config)
        if source is None:
            raise LegionError(
                "no chaos plan or profile (pass plan=/profile= or "
                "construct with Metasystem(chaos=...))")
        if isinstance(source, ChaosPlan):
            built = source
        else:
            if isinstance(source, str):
                config = PROFILES.get(source)
                if config is None:
                    raise LegionError(
                        f"unknown chaos profile {source!r}; choose from "
                        f"{sorted(PROFILES)}")
                profile_name = source
            elif isinstance(source, CampaignConfig):
                config = source
                profile_name = profile or "custom"
            else:
                raise LegionError(
                    f"chaos source must be a profile name, "
                    f"CampaignConfig, or ChaosPlan, got {type(source)}")
            if horizon:
                config = config.with_horizon(horizon)
            built = generate_campaign(self, config, seed=chaos_seed,
                                      profile=profile_name)
        self.chaos = ChaosInjector(self, built).arm()
        return self.chaos

    def enable_guardrails(self, config: Any = None, **kwargs) -> Any:
        """Install the self-healing layer (detect → quarantine → route
        around → probe → recover):

        * a :class:`~repro.guardrails.health.HealthMonitor` classifying
          hosts LIVE/SUSPECT/DOWN and publishing ``host_health`` into
          Collection records,
        * per-destination circuit breakers on the transport,
        * a shared load-aware admission controller on every Host Object,
        * query-time exclusion of DOWN records in the Collection (and
          every federation shard), plus Enactor-side load shedding.

        Idempotent — a second call returns the existing suite.  The layer
        draws no random numbers, so enabling it never perturbs the seeded
        streams of an existing scenario.  Keyword overrides build a
        :class:`~repro.guardrails.config.GuardrailConfig`.
        """
        from .guardrails import (
            AdmissionController,
            BreakerBoard,
            GuardrailConfig,
            GuardrailSuite,
            HealthMonitor,
        )
        if self.guardrails is not None:
            return self.guardrails
        if config is None:
            config = GuardrailConfig(**kwargs)
        elif kwargs:
            raise ValueError("pass either config= or keyword overrides, "
                             "not both")
        monitor = HealthMonitor(
            self.sim, self.collection,
            interval=config.health_interval,
            suspect_after=config.suspect_after,
            down_after=config.down_after,
            fail_suspect=config.fail_suspect,
            fail_down=config.fail_down,
            metrics=self.metrics, spans=self.spans)
        board = BreakerBoard(
            lambda: self.sim.now,
            failure_threshold=config.breaker_failure_threshold,
            cooldown=config.breaker_cooldown,
            metrics=self.metrics, spans=self.spans,
            listener=monitor.note_outcome)
        admission = AdmissionController(
            max_pending=config.admission_max_pending,
            load_limit=config.admission_load_limit,
            metrics=self.metrics)
        self.transport.breakers = board
        self.enactor.health = monitor
        self.enactor.shed_suspect = config.shed_suspect
        self.collection.exclude_down_members = True
        for host in self.hosts:
            host.admission = admission
            monitor.watch(host, self._host_credentials.get(host.loid))
        monitor.start()
        self.guardrails = GuardrailSuite(config, monitor, board, admission)
        return self.guardrails

    def enable_economy(self, config: Any = None, **kwargs) -> Any:
        """Install the computational-economy layer (ROADMAP item 3):

        * a metered accounting :class:`~repro.accounting.ledger.Ledger`
          attached to every Host (cycles x price on completion/kill),
        * a :class:`~repro.economy.market.Market` that prices hosts from
          speed and repricess them from load/utilization on a seeded
          daemon, publishing ``host_ask_price`` into Collection records,
        * a :class:`~repro.economy.budget.BudgetManager` hooked into the
          ledger so charges land on per-user accounts,
        * a :class:`~repro.economy.auction.SealedBidAuction` the economic
          schedulers clear their reservation rounds through.

        Idempotent — a second call returns the existing suite.  Market
        jitter draws only from the dedicated ``("economy", "market")``
        stream, so enabling the economy never perturbs the other seeded
        streams of an existing scenario.  Keyword overrides build an
        :class:`~repro.economy.config.EconomyConfig`.
        """
        from .accounting.ledger import Ledger
        from .economy import (
            BudgetManager,
            EconomyConfig,
            EconomySuite,
            Market,
            SealedBidAuction,
        )
        if self.economy is not None:
            return self.economy
        if config is None:
            config = EconomyConfig(**kwargs)
        elif kwargs:
            raise ValueError("pass either config= or keyword overrides, "
                             "not both")
        ledger = Ledger(clock=lambda: self.sim.now)
        budgets = BudgetManager(clock=lambda: self.sim.now,
                                metrics=self.metrics)
        budgets.attach_ledger(ledger)
        market = Market(
            self.sim, rng=self.rngs.stream("economy", "market"),
            base_price=config.base_price,
            speed_premium=config.speed_premium,
            load_factor=config.load_factor,
            util_factor=config.util_factor,
            repricing_interval=config.repricing_interval,
            repricing_jitter=config.repricing_jitter,
            demand_bump=config.demand_bump,
            metrics=self.metrics, spans=self.spans)
        auction = SealedBidAuction(pricing=config.auction_pricing,
                                   metrics=self.metrics)
        for host in self.hosts:
            ledger.attach(host)
            market.enroll(host)
        market.start()
        self.metrics.gauge_fn("economy_budget_committed",
                              lambda: budgets.total_committed,
                              help="funds held against pending placements")
        self.economy = EconomySuite(config=config, market=market,
                                    auction=auction, budgets=budgets,
                                    ledger=ledger)
        return self.economy

    def enable_retries(self, policy: Any = None, **kwargs) -> Any:
        """Install the opt-in resilience layer: a shared RetryPolicy on
        the transport (idempotent calls) and the Enactor (reservation
        round).  Jitter draws from a dedicated seeded stream, keeping
        retry-enabled runs deterministic."""
        if policy is None:
            from .chaos.retry import RetryPolicy
            policy = RetryPolicy(rng=self.rngs.stream("chaos", "retry"),
                                 **kwargs)
        self.transport.retry_policy = policy
        self.enactor.retry_policy = policy
        return policy

    def start_service(self, config: Any = None, app: Any = None,
                      recovery: Any = None, **kwargs) -> Any:
        """Start the live service tier (ROADMAP item 2): a typed
        :class:`~repro.service.gateway.RequestGateway` feeding a bounded
        :class:`~repro.service.queue.PlacementQueue` drained by a
        :class:`~repro.service.workers.WorkerPool` of seeded daemons
        driving :meth:`~repro.scheduler.base.Scheduler.run`.

        ``app`` is the Class placed per request (default: a maximally
        portable ``service-app`` class sized by the config's ``work``).
        Idempotent — a second call returns the existing suite.  All
        randomness draws from dedicated ``("service", ...)`` streams, so
        starting the service never perturbs the other seeded streams of
        an existing scenario.  Keyword overrides build a
        :class:`~repro.service.config.ServiceConfig`.

        ``recovery`` (a :class:`~repro.recovery.RecoveryConfig`, or
        ``True`` for defaults) arms the crash-recovery layer: a
        write-ahead :class:`~repro.recovery.journal.RequestJournal`, a
        TTL :class:`~repro.recovery.leases.LeaseTable` with per-worker
        heartbeats, and a :class:`~repro.recovery.supervisor.Supervisor`
        daemon that requeues orphans of crashed workers.  Recovery-mode
        workers run their schedulers with ``viable_cache=False`` so a
        checkpoint-restored scheduler (cold cache) behaves identically
        to one that ran straight through.
        """
        from .service import (
            PlacementQueue,
            RequestGateway,
            ServiceConfig,
            ServiceSuite,
            WorkerPool,
        )
        if self.service is not None:
            return self.service
        if config is None:
            config = ServiceConfig(**kwargs)
        elif kwargs:
            raise ValueError("pass either config= or keyword overrides, "
                             "not both")
        if recovery is True:
            from .recovery import RecoveryConfig
            recovery = RecoveryConfig()
        if app is None:
            from .workload.testbed import implementations_for_all_platforms
            app = self.create_class("service-app",
                                    implementations_for_all_platforms(),
                                    work_units=config.work)
        journal = leases = supervisor = None
        heartbeat_interval = 0.0
        sched_kwargs = {}
        if recovery is not None:
            from .recovery import LeaseTable, RequestJournal
            journal = RequestJournal(lambda: self.sim.now,
                                     metrics=self.metrics)
            leases = LeaseTable(recovery.lease_ttl, metrics=self.metrics)
            heartbeat_interval = recovery.heartbeat_interval
            sched_kwargs["viable_cache"] = False
        queue = PlacementQueue(config.queue_cap, config.backpressure,
                               metrics=self.metrics)
        gateway = RequestGateway(self.sim, queue, config,
                                 metrics=self.metrics, spans=self.spans,
                                 hosts=self.hosts, journal=journal)
        pool = WorkerPool(
            self.sim, queue, gateway, app, config,
            scheduler_factory=lambda i: self.make_scheduler(
                config.scheduler,
                rng=self.rngs.stream("service", "sched", str(i)),
                name=f"svc-w{i}", **sched_kwargs),
            rng_factory=lambda i: self.rngs.stream("service", "retry",
                                                   str(i)),
            metrics=self.metrics, spans=self.spans,
            leases=leases, journal=journal,
            heartbeat_interval=heartbeat_interval)
        pool.start()
        if recovery is not None:
            from .recovery import Supervisor
            supervisor = Supervisor(self.sim, gateway, leases, journal,
                                    app, recovery.scan_interval,
                                    metrics=self.metrics,
                                    spans=self.spans).start()
        self.service = ServiceSuite(config, gateway, queue, pool, app,
                                    recovery=recovery, journal=journal,
                                    leases=leases, supervisor=supervisor)
        return self.service

    def stop_service(self) -> Any:
        """Tear the service tier down (checkpoint/restore's middle step).

        Stops the supervisor, shuts the worker pool down (bumping every
        worker generation so in-flight generators die at their next
        resume), and detaches the suite from the metasystem so
        :meth:`start_service` can build a fresh tier.  The world —
        hosts, Collection, the app class and its placed instances —
        keeps running.  Returns the detached suite.
        """
        suite, self.service = self.service, None
        if suite is not None:
            if suite.supervisor is not None:
                suite.supervisor.stop()
            suite.pool.shutdown()
        return suite

    # ------------------------------------------------------------------
    # time control
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def advance(self, seconds: float) -> None:
        """Run the world forward by ``seconds`` of virtual time."""
        self.sim.run_until(self.sim.now + seconds)

    def run_until_quiescent(self, max_time: Optional[float] = None) -> None:
        self.sim.run(until=max_time)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def host_by_name(self, name: str) -> HostObject:
        loid = self.context.lookup(f"/hosts/{name}")
        return self.resolve_strict(loid)

    def snapshot_loads(self) -> Dict[str, float]:
        return {h.machine.name: h.machine.load_average for h in self.hosts}

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Metasystem t={self.sim.now:.1f}s hosts={len(self.hosts)} "
                f"vaults={len(self.vaults)} classes={len(self.classes)}>")
