"""The execution Monitor (paper sections 3 and 3.5).

"After the objects are running, the execution Monitor may request a
recomputation of the schedule, perhaps based on the progress of the
computation and the load on the hosts in the system."  "Using [the RGE]
mechanism, the Monitor can register an outcall with the Host Objects; this
outcall will be performed when a trigger's guard evaluates to true. ...
In our actual implementation, we have no separate monitor objects; the
Enactor or Scheduler perform the monitoring, with the outcall registered
appropriately."

:class:`ExecutionMonitor` is that optional component: it watches a set of
hosts via their load triggers (steps 12-13 of Fig. 3), and when a host
reports overload it selects a victim object and asks the rescheduling policy
for a new placement, then drives the :class:`~repro.monitor.migration.
Migrator`.  The default rescheduling policy queries the Collection for the
least-loaded viable host — a user can substitute any Scheduler, which is the
paper's modularity story applied to monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from ..collection.collection import Collection
from ..hosts.host_object import HostObject
from ..hosts.unix_host import UnixHost
from ..naming.loid import LOID
from ..objects.rge import TriggerFiring
from .migration import MigrationReport, Migrator

__all__ = ["ExecutionMonitor", "MonitorStats"]

Resolver = Callable[[LOID], Any]


@dataclass
class MonitorStats:
    outcalls_received: int = 0
    reschedules_attempted: int = 0
    migrations_succeeded: int = 0
    migrations_failed: int = 0
    reports: List[MigrationReport] = field(default_factory=list)


class ExecutionMonitor:
    """Trigger-driven rescheduling agent.

    Rescheduling decisions are delegated to a pluggable
    :class:`~repro.monitor.policies.ReschedulePolicy`; the default is
    greedy least-loaded, and :class:`~repro.monitor.policies.
    SchedulerBacked` recomputes placements with any real Scheduler.
    """

    def __init__(self, migrator: Migrator, collection: Collection,
                 resolver: Resolver,
                 max_migrations_per_event: int = 1,
                 min_load_advantage: float = 1.0,
                 enabled: bool = True,
                 policy: Optional["ReschedulePolicy"] = None):
        from .policies import GreedyLeastLoaded, ReschedulePolicy
        self.migrator = migrator
        self.collection = collection
        self.resolver = resolver
        self.max_migrations_per_event = max_migrations_per_event
        #: destination must be at least this much less loaded than source
        #: (consumed by the default policy)
        self.min_load_advantage = min_load_advantage
        self.enabled = enabled
        self.policy: ReschedulePolicy = policy or GreedyLeastLoaded(
            collection, resolver, min_load_advantage=min_load_advantage)
        self.stats = MonitorStats()
        self._watched: List[HostObject] = []

    # -- registration (step 12: outcall to the Monitor) ----------------------
    def watch(self, host: HostObject,
              event_name: str = UnixHost.LOAD_EVENT) -> None:
        """Register this monitor's outcall with a host's trigger engine."""
        host.rge.register_outcall(event_name, self._on_overload)
        self._watched.append(host)

    def watch_all(self, hosts: Sequence[HostObject]) -> None:
        for host in hosts:
            self.watch(host)

    # -- the outcall -------------------------------------------------------------
    def _on_overload(self, firing: TriggerFiring) -> None:
        """Step 13: notify that rescheduling should be performed."""
        self.stats.outcalls_received += 1
        if not self.enabled:
            return
        host = firing.source
        if not isinstance(host, HostObject):
            return
        self.rebalance_host(host)

    # -- rescheduling (delegated to the policy) ---------------------------------
    def _pick_victims(self, host: HostObject) -> List[LOID]:
        return self.policy.pick_victims(host,
                                        self.max_migrations_per_event)

    def rebalance_host(self, host: HostObject) -> List[MigrationReport]:
        """Move victim objects from an overloaded host to better homes."""
        reports: List[MigrationReport] = []
        for victim in self._pick_victims(host):
            placed = host.placed.get(victim)
            if placed is None:
                continue
            dest = self.policy.pick_destination(
                placed.instance.class_loid, host)
            if dest is None:
                continue
            self.stats.reschedules_attempted += 1
            report = self.migrator.migrate(victim, dest)
            reports.append(report)
            self.stats.reports.append(report)
            if report.ok:
                self.stats.migrations_succeeded += 1
            else:
                self.stats.migrations_failed += 1
        return reports
