"""Pluggable rescheduling policies for the execution Monitor.

The paper's modularity rule applies to monitoring too: "others are free to
substitute their own modules".  A :class:`ReschedulePolicy` decides (a)
which objects to move off a misbehaving host and (b) where each should go.
Two implementations ship:

* :class:`GreedyLeastLoaded` — the simple default: biggest remaining work
  first, destination is the least-loaded viable host with a worthwhile
  load advantage (Collection-driven);
* :class:`SchedulerBacked` — "request a recomputation of the schedule"
  literally: delegate destination choice to any
  :class:`~repro.scheduler.base.Scheduler` by computing a fresh placement
  for the victim's class and using its first mapping.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..collection.collection import Collection
from ..errors import LegionError
from ..hosts.host_object import HostObject
from ..naming.loid import LOID
from ..scheduler.base import ObjectClassRequest, Scheduler
from ..scheduler.base import implementation_query

__all__ = ["ReschedulePolicy", "GreedyLeastLoaded", "SchedulerBacked"]

Resolver = Callable[[LOID], Any]


class ReschedulePolicy:
    """Strategy interface consumed by the ExecutionMonitor."""

    def pick_victims(self, host: HostObject,
                     limit: int) -> List[LOID]:
        raise NotImplementedError

    def pick_destination(self, victim_class_loid: LOID,
                         source: HostObject) -> Optional[LOID]:
        raise NotImplementedError


class GreedyLeastLoaded(ReschedulePolicy):
    """Default: most-remaining-work victims, least-loaded destination."""

    def __init__(self, collection: Collection, resolver: Resolver,
                 min_load_advantage: float = 1.0):
        self.collection = collection
        self.resolver = resolver
        self.min_load_advantage = min_load_advantage

    def pick_victims(self, host: HostObject, limit: int) -> List[LOID]:
        candidates = []
        for loid, placed in host.placed.items():
            remaining = (placed.job.remaining
                         if placed.job is not None else 0.0)
            candidates.append((remaining, loid))
        candidates.sort(reverse=True)
        return [loid for _rem, loid in candidates[:limit]]

    def pick_destination(self, victim_class_loid: LOID,
                         source: HostObject) -> Optional[LOID]:
        class_obj = self.resolver(victim_class_loid)
        if class_obj is None:
            return None
        try:
            query = implementation_query(class_obj.get_implementations())
        except LegionError:
            return None
        query += " and $host_slots_free > 0"
        best: Optional[LOID] = None
        best_load = float("inf")
        for record in self.collection.query(query):
            if record.member == source.loid:
                continue
            load = float(record.get("host_load", 0.0))
            if load < best_load:
                best_load = load
                best = record.member
        if best is None:
            return None
        if source.machine.load_average - best_load < \
                self.min_load_advantage:
            return None
        return best


class SchedulerBacked(ReschedulePolicy):
    """Recompute the placement with a real Scheduler.

    Victim selection follows the greedy rule; the destination is whatever
    host the wrapped Scheduler's freshly computed single-instance schedule
    names (excluding the source).  Any Scheduler works — the Monitor thus
    inherits load awareness, cost awareness, implementation selection, or
    anything else the Scheduler implements.
    """

    def __init__(self, scheduler: Scheduler, resolver: Resolver):
        self.scheduler = scheduler
        self.resolver = resolver

    def pick_victims(self, host: HostObject, limit: int) -> List[LOID]:
        candidates = []
        for loid, placed in host.placed.items():
            remaining = (placed.job.remaining
                         if placed.job is not None else 0.0)
            candidates.append((remaining, loid))
        candidates.sort(reverse=True)
        return [loid for _rem, loid in candidates[:limit]]

    def pick_destination(self, victim_class_loid: LOID,
                         source: HostObject) -> Optional[LOID]:
        class_obj = self.resolver(victim_class_loid)
        if class_obj is None:
            return None
        try:
            request_list = self.scheduler.compute_schedule(
                [ObjectClassRequest(class_obj, count=1)])
        except LegionError:
            return None
        for master in request_list.masters:
            for variant in [None] + list(master.variants):
                for mapping in master.resolve(variant):
                    if mapping.host_loid != source.loid:
                        return mapping.host_loid
        return None
