"""The execution Monitor and the migration machinery it drives."""

from .migration import MigrationReport, Migrator
from .monitor import ExecutionMonitor, MonitorStats
from .policies import GreedyLeastLoaded, ReschedulePolicy, SchedulerBacked

__all__ = ["Migrator", "MigrationReport", "ExecutionMonitor",
           "MonitorStats", "ReschedulePolicy", "GreedyLeastLoaded",
           "SchedulerBacked"]
