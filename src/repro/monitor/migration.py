"""Object migration: shutdown / move OPR / restart (paper section 2.1).

"All Legion objects automatically support shutdown and restart, and
therefore any active object can be migrated by shutting it down, moving the
passive state to a new Vault if necessary, and activating the object on
another host."

The :class:`Migrator` performs exactly those three steps, charging transport
costs for the OPR movement, and re-reserving on the destination host before
committing (migration is itself a small negotiation — the destination's
autonomy still applies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..errors import LegionError
from ..hosts.host_object import HostObject
from ..hosts.reservations import REUSABLE_TIME
from ..naming.loid import LOID
from ..net.transport import Transport
from ..vaults.vault_object import VaultObject

__all__ = ["Migrator", "MigrationReport"]

Resolver = Callable[[LOID], Any]


@dataclass
class MigrationReport:
    ok: bool
    instance: Optional[LOID] = None
    from_host: Optional[LOID] = None
    to_host: Optional[LOID] = None
    opr_bytes: int = 0
    elapsed: float = 0.0
    detail: str = ""


class Migrator:
    """Executes the deactivate / move-OPR / reactivate protocol."""

    def __init__(self, transport: Transport, resolver: Resolver):
        self.transport = transport
        self.resolver = resolver
        self.migrations = 0
        self.failures = 0

    def migrate(self, instance_loid: LOID, to_host_loid: LOID,
                to_vault_loid: Optional[LOID] = None,
                reservation_duration: float = 3600.0) -> MigrationReport:
        """Move one active object to another host (and optionally vault).

        Each migration is the root of its own trace (steps 12-13 of the
        placement protocol run as their own request)."""
        with self.transport.spans.span(
                "migration", step="12-13", instance=str(instance_loid),
                to_host=str(to_host_loid)) as root:
            report = self._migrate(instance_loid, to_host_loid,
                                   to_vault_loid, reservation_duration)
            root.set_attribute("ok", report.ok)
            if not report.ok:
                root.set_status("error")
            return report

    def _migrate(self, instance_loid: LOID, to_host_loid: LOID,
                 to_vault_loid: Optional[LOID],
                 reservation_duration: float) -> MigrationReport:
        sim = self.transport.sim
        start = sim.now
        report = MigrationReport(ok=False, instance=instance_loid,
                                 to_host=to_host_loid)

        # resolve the moving parts
        class_obj = self.resolver(instance_loid.class_loid())
        if class_obj is None:
            report.detail = f"unknown class for {instance_loid}"
            self.failures += 1
            return report
        try:
            instance = class_obj.get_instance(instance_loid)
        except LegionError as exc:
            report.detail = str(exc)
            self.failures += 1
            return report
        from_host: Optional[HostObject] = (
            self.resolver(instance.host_loid)
            if instance.host_loid is not None else None)
        if from_host is None:
            report.detail = f"{instance_loid} is not running anywhere"
            self.failures += 1
            return report
        report.from_host = from_host.loid
        to_host: Optional[HostObject] = self.resolver(to_host_loid)
        if to_host is None:
            report.detail = f"unknown destination host {to_host_loid}"
            self.failures += 1
            return report

        old_vault_loid = instance.vault_loid
        new_vault_loid = to_vault_loid or old_vault_loid
        if new_vault_loid is None or not to_host.vault_ok(new_vault_loid):
            # fall back to any vault the destination can reach
            usable = to_host.get_compatible_vaults()
            if not usable:
                report.detail = (f"destination {to_host_loid} has no "
                                 f"compatible vault")
                self.failures += 1
                return report
            new_vault_loid = usable[0]

        # 1. reserve on the destination first — don't stop the object until
        #    we know it has somewhere to go
        try:
            token = self.transport.invoke(
                from_host.location, to_host.location,
                to_host.make_reservation, new_vault_loid,
                instance.class_loid, rtype=REUSABLE_TIME,
                duration=reservation_duration, label="migrate-reserve")
        except LegionError as exc:
            report.detail = f"destination refused: {exc}"
            self.failures += 1
            return report

        # 2. shut down and persist
        try:
            opr, _remaining = from_host.deactivate_object(instance_loid)
        except LegionError as exc:
            try:
                to_host.cancel_reservation(token)
            except LegionError:
                pass
            report.detail = f"deactivation failed: {exc}"
            self.failures += 1
            return report
        report.opr_bytes = opr.size_bytes

        # 3. move the passive state to the new vault if necessary.  Any
        # failure here must roll the object back onto its source host —
        # "accommodate failure at any step in the scheduling process".
        def rollback(reason: str) -> MigrationReport:
            try:
                to_host.cancel_reservation(token)
            except LegionError:
                pass
            instance.reactivate(opr, host_loid=from_host.loid,
                                vault_loid=old_vault_loid
                                or new_vault_loid,
                                now=sim.now)
            restarted = from_host.start_object(
                instance, old_vault_loid or new_vault_loid, None,
                now=sim.now)
            report.detail = reason + (
                "" if restarted.ok
                else f"; rollback also failed: {restarted.reason}")
            self.failures += 1
            return report

        old_vault: Optional[VaultObject] = (
            self.resolver(old_vault_loid)
            if old_vault_loid is not None else None)
        new_vault: Optional[VaultObject] = self.resolver(new_vault_loid)
        if new_vault is None:
            return rollback(f"unknown vault {new_vault_loid}")
        try:
            if old_vault is not None and old_vault.loid != new_vault.loid:
                self.transport.transfer(old_vault.location,
                                        new_vault.location,
                                        opr.size_bytes, label="opr-move")
            new_vault.store_opr(opr)
        except LegionError as exc:
            return rollback(f"OPR move failed: {exc}")
        if (old_vault is not None and old_vault.loid != new_vault.loid
                and old_vault.has_opr(instance_loid)):
            old_vault.delete_opr(instance_loid)

        # 4. reactivate on the destination
        instance.reactivate(new_vault.retrieve_opr(instance_loid),
                            host_loid=to_host.loid,
                            vault_loid=new_vault.loid, now=sim.now)
        started = self.transport.invoke(
            None, to_host.location, to_host.start_object, instance,
            new_vault.loid, reservation_token=token, label="migrate-start")
        if not started.ok:
            from ..objects.base import ObjectState
            report.detail = f"reactivation failed: {started.reason}"
            instance.state = ObjectState.INERT
            self.failures += 1
            return report

        report.ok = True
        report.elapsed = sim.now - start
        self.migrations += 1
        return report
