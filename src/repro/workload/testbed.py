"""Standard simulated testbeds.

The paper's testbed was the late-1990s Legion deployment: departmental Unix
workstations of several architectures, SMP servers, and queue-managed
clusters, spread over multiple administrative domains.  These builders
produce deterministic synthetic equivalents (DESIGN.md section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..hosts.machine import LoadWalk, MachineSpec
from ..metasystem import Metasystem
from ..objects.class_object import Implementation

__all__ = [
    "PLATFORMS",
    "TestbedSpec",
    "build_testbed",
    "small_campus",
    "multi_domain",
    "implementations_for_all_platforms",
]

#: the 1999-era platform zoo: (arch, os_name, os_version, relative speed)
PLATFORMS: List[Tuple[str, str, str, float]] = [
    ("sparc", "SunOS", "5.7", 1.0),
    ("x86", "Linux", "2.2", 1.2),
    ("mips", "IRIX", "6.5", 1.5),
    ("alpha", "OSF1", "4.0", 2.0),
    ("rs6000", "AIX", "4.3", 1.3),
]


def implementations_for_all_platforms(memory_mb: float = 16.0
                                      ) -> List[Implementation]:
    """An implementation per platform — a maximally portable class."""
    return [Implementation(arch, os_name, memory_mb=memory_mb,
                           relative_speed=speed)
            for arch, os_name, _ver, speed in PLATFORMS]


@dataclass
class TestbedSpec:
    """Parameters for :func:`build_testbed`."""

    __test__ = False  # not a pytest test class despite the name

    n_domains: int = 3
    hosts_per_domain: int = 8
    vaults_per_domain: int = 1
    #: how many distinct platforms appear (1 = homogeneous)
    platform_mix: int = 3
    #: mean background load of workstation load walks (0 disables dynamics)
    background_load_mean: float = 0.5
    load_spike_prob: float = 0.0
    #: domains that additionally get a batch cluster, e.g. {0: "backfill"}
    batch_clusters: dict = field(default_factory=dict)
    batch_nodes: int = 16
    seed: int = 0
    host_slots: int = 4
    reassess_interval: float = 30.0
    domain_distance_step: float = 0.5
    #: "off" | "flat" | "spans" — passed to :class:`Metasystem`
    tracing: str = "spans"
    #: federate the information database into this many Collection
    #: shards (0 = single monolithic Collection)
    federation_shards: int = 0
    #: replicas per record when federated
    federation_replication: int = 2
    #: anti-entropy sweep period in virtual seconds (0 disables gossip)
    gossip_interval: float = 0.0
    #: router-side query cache TTL in virtual seconds (0 disables)
    federation_cache_ttl: float = 0.0
    #: enable the self-healing guardrails layer
    #: (:meth:`~repro.metasystem.Metasystem.enable_guardrails`)
    guardrails: bool = False
    #: arm a chaos campaign over the built testbed ("" disables); a name
    #: from :data:`repro.chaos.plan.PROFILES`
    chaos_profile: str = ""
    #: campaign seed (independent of the testbed seed)
    chaos_seed: int = 0
    #: campaign horizon override in virtual seconds (0 = profile default)
    chaos_horizon: float = 0.0
    #: arm the windowed time-series sampler with this window length in
    #: virtual seconds (0 disables; feeds the SLO engine and
    #: ``legion-sim slo``)
    sampler_window: float = 0.0
    #: enable the computational-economy layer (market pricing, budgets,
    #: auctions — :meth:`~repro.metasystem.Metasystem.enable_economy`)
    economy: bool = False
    #: start the live service tier (gateway + placement queue + worker
    #: pool — :meth:`~repro.metasystem.Metasystem.start_service`); True
    #: for defaults or a :class:`~repro.service.config.ServiceConfig`
    service: object = None

    def __post_init__(self) -> None:
        if self.n_domains < 1 or self.hosts_per_domain < 1:
            raise ValueError("need at least one domain and one host")
        if not 1 <= self.platform_mix <= len(PLATFORMS):
            raise ValueError(
                f"platform_mix must be in [1, {len(PLATFORMS)}]")


def build_testbed(spec: Optional[TestbedSpec] = None, **kwargs) -> Metasystem:
    """Build a metasystem testbed from a :class:`TestbedSpec`."""
    if spec is None:
        spec = TestbedSpec(**kwargs)
    elif kwargs:
        raise TypeError("pass either a TestbedSpec or keyword arguments")
    federation = None
    if spec.federation_shards:
        from ..federation.router import FederationConfig
        federation = FederationConfig(
            shards=spec.federation_shards,
            replication=spec.federation_replication,
            gossip_interval=spec.gossip_interval,
            cache_ttl=spec.federation_cache_ttl)
    meta = Metasystem(seed=spec.seed,
                      reassess_interval=spec.reassess_interval,
                      tracing=spec.tracing,
                      federation=federation)
    spec_rng = meta.rngs.stream("testbed")
    for d in range(spec.n_domains):
        domain = f"dom{d}"
        meta.add_domain(domain,
                        distance=1.0 + spec.domain_distance_step * d)
        for v in range(spec.vaults_per_domain):
            meta.add_vault(domain, name=f"{domain}-vault{v}")
        for h in range(spec.hosts_per_domain):
            arch, os_name, os_ver, speed = PLATFORMS[
                (d + h) % spec.platform_mix]
            machine_spec = MachineSpec(
                arch=arch, os_name=os_name, os_version=os_ver,
                cpus=1 + int(spec_rng.integers(0, 2)),
                speed=speed * float(spec_rng.uniform(0.8, 1.2)),
                memory_mb=float(spec_rng.choice([64.0, 128.0, 256.0])))
            walk = None
            if spec.background_load_mean > 0:
                walk = LoadWalk(mean=spec.background_load_mean,
                                spike_prob=spec.load_spike_prob)
            meta.add_unix_host(
                f"{domain}-ws{h}", domain, machine_spec,
                load_walk=walk,
                initial_load=(spec.background_load_mean
                              * float(spec_rng.uniform(0.5, 1.5))),
                slots=spec.host_slots)
        kind = spec.batch_clusters.get(d)
        if kind:
            meta.add_batch_host(f"{domain}-cluster", domain,
                                queue_kind=kind, nodes=spec.batch_nodes)
    if spec.sampler_window:
        meta.start_sampler(window=spec.sampler_window)
    if spec.economy:
        meta.enable_economy()
    if spec.guardrails:
        meta.enable_guardrails()
    if spec.service:
        if spec.service is True:
            meta.start_service()
        else:
            meta.start_service(config=spec.service)
    if spec.chaos_profile:
        meta.start_chaos(profile=spec.chaos_profile,
                         chaos_seed=spec.chaos_seed,
                         horizon=spec.chaos_horizon or None)
    return meta


def small_campus(seed: int = 0, hosts: int = 8,
                 dynamics: bool = True) -> Metasystem:
    """One department: a single domain of Unix workstations plus a vault."""
    return build_testbed(TestbedSpec(
        n_domains=1, hosts_per_domain=hosts, platform_mix=2,
        background_load_mean=0.5 if dynamics else 0.0, seed=seed))


def multi_domain(n_domains: int = 4, hosts_per_domain: int = 8,
                 seed: int = 0, platform_mix: int = 3,
                 dynamics: bool = True,
                 spike_prob: float = 0.0) -> Metasystem:
    """The metacomputing setting: several autonomous domains."""
    return build_testbed(TestbedSpec(
        n_domains=n_domains, hosts_per_domain=hosts_per_domain,
        platform_mix=platform_mix,
        background_load_mean=0.6 if dynamics else 0.0,
        load_spike_prob=spike_prob, seed=seed))
