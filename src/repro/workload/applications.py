"""Application models: the workload classes the paper's users ran.

Section 4.3 names the application families Legion targeted: "MPI-based or
PVM-based simulations, parameter space studies, and other modeling
applications".  Three models cover them:

* :class:`BagOfTasks` — independent equal-or-varying tasks (the generic
  throughput workload);
* :class:`ParameterStudy` — a sweep with heavy-tailed per-point cost;
* :class:`StencilApplication` — the 2-D nearest-neighbour ocean-simulation
  structure, with an explicit per-iteration communication cost model so
  placement quality is measurable (E11).

Each model creates Legion classes on a :class:`~repro.metasystem.Metasystem`
and provides ``run(scheduler)`` returning a :class:`RunReport` with
makespan and placement metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import LegionError
from ..metasystem import Metasystem
from ..naming.loid import LOID
from ..objects.class_object import ClassObject, Implementation
from ..scheduler.base import ObjectClassRequest, Scheduler
from ..scheduler.stencil import StencilScheduler, grid_comm_cost
from ..sim.distributions import Distribution
from .testbed import implementations_for_all_platforms

__all__ = ["RunReport", "BagOfTasks", "ParameterStudy",
           "StencilApplication", "wait_for_completion"]


@dataclass
class RunReport:
    """Outcome of running one application through a Scheduler."""

    ok: bool
    scheduled: int = 0
    completed: int = 0
    makespan: float = float("nan")
    scheduling_time: float = 0.0
    collection_queries: int = 0
    schedule_tries: int = 0
    detail: str = ""
    #: application-specific extras (e.g. stencil comm cost)
    metrics: Dict[str, float] = field(default_factory=dict)


def wait_for_completion(meta: Metasystem, class_obj: ClassObject,
                        loids: Sequence[LOID],
                        timeout: float = 1e6,
                        poll: float = 5.0) -> Tuple[int, float]:
    """Advance virtual time until every instance reports ``completed_at``.

    Returns ``(completed_count, last_completion_time)``.
    """
    deadline = meta.now + timeout
    pending = set(loids)
    last_done = meta.now
    while pending and meta.now < deadline:
        done = set()
        for loid in pending:
            try:
                instance = class_obj.get_instance(loid)
            except LegionError:
                done.add(loid)  # killed — count as resolved
                continue
            completed = instance.attributes.get("completed_at")
            if completed is not None:
                last_done = max(last_done, float(completed))
                done.add(loid)
        pending -= done
        if pending:
            meta.advance(poll)
    return len(loids) - len(pending), last_done


class BagOfTasks:
    """N independent tasks of (possibly stochastic) size."""

    def __init__(self, meta: Metasystem, name: str, n_tasks: int,
                 work_units: float = 300.0,
                 work_dist: Optional[Distribution] = None,
                 memory_mb: float = 16.0,
                 implementations: Optional[
                     Sequence[Implementation]] = None):
        if n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        self.meta = meta
        self.name = name
        self.n_tasks = n_tasks
        rng = meta.rngs.stream("app", name, "work")

        def attrs(_loid: LOID) -> Dict[str, float]:
            if work_dist is not None:
                return {"work_units": float(work_dist.sample(rng))}
            return {"work_units": float(work_units)}

        self.class_obj = meta.create_class(
            name,
            list(implementations or implementations_for_all_platforms(
                memory_mb)),
            memory_mb=memory_mb, attr_factory=attrs)

    def requests(self) -> List[ObjectClassRequest]:
        return [ObjectClassRequest(self.class_obj, count=self.n_tasks)]

    def run(self, scheduler: Scheduler,
            wait: bool = True, timeout: float = 1e6) -> RunReport:
        start = self.meta.now
        outcome = scheduler.run(self.requests())
        report = RunReport(ok=outcome.ok,
                           scheduled=len(outcome.created),
                           scheduling_time=outcome.elapsed,
                           collection_queries=outcome.collection_queries,
                           schedule_tries=outcome.schedule_tries,
                           detail=outcome.detail)
        if not outcome.ok or not wait:
            return report
        completed, last_done = wait_for_completion(
            self.meta, self.class_obj, outcome.created, timeout=timeout)
        report.completed = completed
        if completed == len(outcome.created):
            report.makespan = last_done - start
        return report


class ParameterStudy(BagOfTasks):
    """A parameter sweep: many points, heavy-tailed cost per point."""

    def __init__(self, meta: Metasystem, name: str, n_points: int,
                 base_work: float = 120.0, tail_alpha: float = 1.8,
                 memory_mb: float = 16.0,
                 implementations: Optional[
                     Sequence[Implementation]] = None):
        from ..sim.distributions import Pareto
        super().__init__(meta, name, n_points,
                         work_dist=Pareto(alpha=tail_alpha, xm=base_work),
                         memory_mb=memory_mb,
                         implementations=implementations)


class StencilApplication:
    """The section-4.3 workload: a rows x cols grid of communicating
    subtasks (one class, rows*cols instances).

    Execution model: each subtask performs ``iterations x work_per_iter``
    compute units; the *placement* determines the per-iteration
    communication cost (``grid_comm_cost``), reported as a metric and —
    because neighbours exchange messages synchronously — added to the
    effective per-instance work as ``comm_penalty_per_unit x edge cost
    share``.
    """

    def __init__(self, meta: Metasystem, name: str, rows: int, cols: int,
                 iterations: int = 100, work_per_iter: float = 2.0,
                 memory_mb: float = 32.0,
                 comm_penalty_per_unit: float = 0.02,
                 implementations: Optional[
                     Sequence[Implementation]] = None):
        if rows < 1 or cols < 1:
            raise ValueError("grid dimensions must be positive")
        self.meta = meta
        self.name = name
        self.rows, self.cols = rows, cols
        self.iterations = iterations
        self.work_per_iter = work_per_iter
        self.comm_penalty_per_unit = comm_penalty_per_unit
        base_work = iterations * work_per_iter
        self.class_obj = meta.create_class(
            name,
            list(implementations
                 or implementations_for_all_platforms(memory_mb)),
            work_units=base_work, memory_mb=memory_mb)

    @property
    def count(self) -> int:
        return self.rows * self.cols

    def requests(self) -> List[ObjectClassRequest]:
        return [ObjectClassRequest(self.class_obj, count=self.count)]

    def _host_domains(self) -> Dict[LOID, str]:
        return {h.loid: h.domain for h in self.meta.hosts}

    def placement_cost(self, entries) -> float:
        """Per-iteration communication cost of an entry list laid out in
        snake order (the same convention StencilScheduler uses)."""
        from ..scheduler.stencil import snake_order
        cells = snake_order(self.rows, self.cols)
        cell_host = {cell: entries[i].host_loid
                     for i, cell in enumerate(cells)}
        return grid_comm_cost(self.rows, self.cols, cell_host,
                              self._host_domains())

    def run(self, scheduler: Scheduler, wait: bool = True,
            timeout: float = 1e6) -> RunReport:
        start = self.meta.now
        outcome = scheduler.run(self.requests())
        report = RunReport(ok=outcome.ok,
                           scheduled=len(outcome.created),
                           scheduling_time=outcome.elapsed,
                           collection_queries=outcome.collection_queries,
                           schedule_tries=outcome.schedule_tries,
                           detail=outcome.detail)
        if not outcome.ok:
            return report
        entries = outcome.feedback.reserved_entries
        comm = self.placement_cost(entries)
        report.metrics["comm_cost_per_iter"] = comm
        # synchronous neighbour exchange: every instance pays the comm bill
        penalty = (self.comm_penalty_per_unit * comm * self.iterations
                   / max(1, self.count))
        for loid in outcome.created:
            instance = self.class_obj.get_instance(loid)
            host = self.meta.resolve(instance.host_loid)
            if host is None:
                continue
            placed = host.placed.get(loid)
            if placed is not None and placed.job is not None:
                # charge the communication penalty as extra work
                host.machine.add_work(placed.job, penalty)
        if not wait:
            return report
        completed, last_done = wait_for_completion(
            self.meta, self.class_obj, outcome.created, timeout=timeout)
        report.completed = completed
        if completed == len(outcome.created):
            report.makespan = last_done - start
        return report
