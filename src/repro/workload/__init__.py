"""Workloads: testbed builders, application models, arrival generators."""

from .applications import (
    BagOfTasks,
    ParameterStudy,
    RunReport,
    StencilApplication,
    wait_for_completion,
)
from .generator import ArrivalProcess, RequestStream, StreamStats
from .testbed import (
    PLATFORMS,
    TestbedSpec,
    build_testbed,
    implementations_for_all_platforms,
    multi_domain,
    small_campus,
)

__all__ = [
    "BagOfTasks", "ParameterStudy", "StencilApplication", "RunReport",
    "wait_for_completion",
    "ArrivalProcess", "RequestStream", "StreamStats",
    "TestbedSpec", "build_testbed", "small_campus", "multi_domain",
    "PLATFORMS", "implementations_for_all_platforms",
]
