"""Arrival-process workload generation.

For throughput/contention experiments (E5, E9, E10) we need a stream of
scheduling requests arriving over virtual time, not a single batch.
:class:`ArrivalProcess` samples inter-arrival gaps from a distribution and
invokes a callback per arrival; :class:`RequestStream` specializes it to
"schedule ``k`` instances of class ``C``" requests with recorded outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..scheduler.base import ObjectClassRequest, Scheduler, SchedulingOutcome
from ..sim.distributions import Distribution, Exponential
from ..sim.kernel import Simulator

__all__ = ["ArrivalProcess", "RequestStream", "StreamStats"]


class ArrivalProcess:
    """Schedules ``callback(i)`` at stochastic arrival times."""

    def __init__(self, sim: Simulator, rng: np.random.Generator,
                 interarrival: Distribution,
                 callback: Callable[[int], None],
                 count: Optional[int] = None,
                 stop_time: Optional[float] = None):
        if count is None and stop_time is None:
            raise ValueError("bound the process with count or stop_time")
        self.sim = sim
        self.rng = rng
        self.interarrival = interarrival
        self.callback = callback
        self.count = count
        self.stop_time = stop_time
        self.arrivals = 0

    def start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = max(0.0, float(self.interarrival.sample(self.rng)))
        when = self.sim.now + gap
        if self.stop_time is not None and when > self.stop_time:
            return
        self.sim.schedule(gap, self._fire)

    def _fire(self) -> None:
        if self.count is not None and self.arrivals >= self.count:
            return
        self.callback(self.arrivals)
        self.arrivals += 1
        if self.count is None or self.arrivals < self.count:
            self._schedule_next()


@dataclass
class StreamStats:
    submitted: int = 0
    succeeded: int = 0
    failed: int = 0
    outcomes: List[SchedulingOutcome] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        if self.submitted == 0:
            return float("nan")
        return self.succeeded / self.submitted


class RequestStream:
    """A stream of identical placement requests driven by arrivals."""

    def __init__(self, sim: Simulator, scheduler: Scheduler,
                 requests: List[ObjectClassRequest],
                 rng: np.random.Generator,
                 mean_interarrival: float = 60.0,
                 count: int = 20,
                 reservation_duration: float = 600.0):
        self.scheduler = scheduler
        self.requests = requests
        self.reservation_duration = reservation_duration
        self.stats = StreamStats()
        self._process = ArrivalProcess(
            sim, rng, Exponential(mean_interarrival), self._submit,
            count=count)

    def _submit(self, _i: int) -> None:
        self.stats.submitted += 1
        outcome = self.scheduler.run(
            self.requests, reservation_duration=self.reservation_duration)
        self.stats.outcomes.append(outcome)
        if outcome.ok:
            self.stats.succeeded += 1
        else:
            self.stats.failed += 1

    def start(self) -> None:
        self._process.start()
