"""Guardrails: the reproduction's self-healing layer.

PR 4's chaos campaigns showed the placement path treating every host as
live and willing even while faults land; this package closes the loop —
**detect → quarantine → route around → probe → recover**:

* :mod:`~repro.guardrails.health` — HealthMonitor daemon classifying
  hosts LIVE/SUSPECT/DOWN from heartbeats + invoke outcomes, publishing
  ``host_health`` into Collection records so queries exclude quarantined
  hosts,
* :mod:`~repro.guardrails.breaker` — per-destination circuit breakers on
  ``Transport.invoke`` failing fast with ``CircuitOpenError``,
* :mod:`~repro.guardrails.admission` — load-aware admission control on
  Host Objects (``AdmissionRejected``), Table 1's accept/reject made
  dynamic,
* :mod:`~repro.guardrails.compare` — the off / retries-only /
  guardrails+retries benchmark behind ``legion-sim guardrails``.

Everything is deterministic and RNG-free: enabling guardrails never
perturbs the seeded random streams of an existing scenario, so
with/without comparisons see identical fault timelines.
"""

from .admission import AdmissionController
from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker
from .compare import MODES, GuardrailsComparison, run_comparison
from .config import GuardrailConfig
from .health import DOWN, LIVE, SUSPECT, HealthMonitor

__all__ = [
    "AdmissionController",
    "BreakerBoard",
    "CircuitBreaker",
    "GuardrailConfig",
    "GuardrailSuite",
    "GuardrailsComparison",
    "HealthMonitor",
    "MODES",
    "run_comparison",
    "CLOSED", "OPEN", "HALF_OPEN",
    "LIVE", "SUSPECT", "DOWN",
]


class GuardrailSuite:
    """The wired-up guardrails of one Metasystem (what
    :meth:`~repro.metasystem.Metasystem.enable_guardrails` returns)."""

    def __init__(self, config: GuardrailConfig, monitor: HealthMonitor,
                 board: BreakerBoard, admission: AdmissionController):
        self.config = config
        self.monitor = monitor
        self.board = board
        self.admission = admission

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<GuardrailSuite breakers={len(self.board)} "
                f"watched={self.monitor.watched()}>")
