"""GuardrailConfig: one knob bundle for the self-healing layer.

Every threshold is expressed in virtual seconds (or counts) and has a
default sized against the Metasystem's default 30 s host reassessment
heartbeat: a host is SUSPECT after missing ~2 heartbeats and DOWN after
missing ~5, while a couple of consecutive transport failures fast-track
the classification without waiting for staleness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["GuardrailConfig"]


@dataclass(frozen=True)
class GuardrailConfig:
    """Parameters for :meth:`repro.metasystem.Metasystem.enable_guardrails`."""

    # -- circuit breakers (per transport destination) ----------------------
    #: consecutive transport failures before a breaker opens
    breaker_failure_threshold: int = 3
    #: how long an open breaker rejects before allowing a half-open probe
    breaker_cooldown: float = 45.0

    # -- health monitor ----------------------------------------------------
    #: classification sweep period on the virtual clock
    health_interval: float = 15.0
    #: heartbeat silence before a host is SUSPECT (~2.5 missed heartbeats)
    suspect_after: float = 75.0
    #: heartbeat silence before a host is DOWN (~5 missed heartbeats)
    down_after: float = 150.0
    #: consecutive invoke failures that force SUSPECT regardless of age
    fail_suspect: int = 2
    #: consecutive invoke failures that force DOWN regardless of age
    fail_down: int = 5

    # -- admission control (per Host Object) -------------------------------
    #: bound on granted-but-unredeemed reservations (None disables)
    admission_max_pending: Optional[int] = 16
    #: machine load average above which new reservations are refused
    #: (None disables)
    admission_load_limit: Optional[float] = 16.0

    # -- enactor load shedding --------------------------------------------
    #: skip SUSPECT hosts during reservation rounds when fallback
    #: schedules remain (DOWN hosts are always shed)
    shed_suspect: bool = True

    def __post_init__(self) -> None:
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown <= 0:
            raise ValueError("breaker_cooldown must be positive")
        if self.health_interval <= 0:
            raise ValueError("health_interval must be positive")
        if not 0 < self.suspect_after <= self.down_after:
            raise ValueError(
                "need 0 < suspect_after <= down_after")
        if not 0 < self.fail_suspect <= self.fail_down:
            raise ValueError("need 0 < fail_suspect <= fail_down")
        if (self.admission_max_pending is not None
                and self.admission_max_pending < 1):
            raise ValueError("admission_max_pending must be >= 1")
        if (self.admission_load_limit is not None
                and self.admission_load_limit <= 0):
            raise ValueError("admission_load_limit must be positive")
