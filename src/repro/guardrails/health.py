"""HealthMonitor: per-host liveness classification and quarantine publishing.

The monitor fuses two evidence streams:

* **heartbeats** — every Host Object reassessment push doubles as a
  liveness beacon (the monitor registers itself as a push target), and
* **invoke outcomes** — the :class:`~repro.guardrails.breaker.BreakerBoard`
  forwards per-destination success/failure results.

A periodic sweep classifies each watched host::

                 stale > suspect_after              stale > down_after
                 or failures >= fail_suspect        or failures >= fail_down
        LIVE  ------------------------------> SUSPECT -----------------> DOWN
          ^                                      |                        |
          |        fresh heartbeat /             |   fresh heartbeat /    |
          +---------- invoke success ------------+------ invoke success --+

and on every transition publishes ``host_health`` / ``host_health_since``
into the host's Collection record so Schedulers and the federation
router can exclude quarantined hosts *at query time*.  A heartbeat also
resets the consecutive-failure count — a quarantined host receives no
invokes, so without this the failure count could never decay and a
recovered host would stay quarantined forever.

Everything is driven by the virtual clock; the monitor draws **no**
random numbers, so enabling guardrails never perturbs the seeded RNG
streams of an existing scenario.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import HostUnreachableError, NetworkError, NotAMemberError

__all__ = ["LIVE", "SUSPECT", "DOWN", "HealthMonitor"]

LIVE = "live"
SUSPECT = "suspect"
DOWN = "down"

_RANK = {LIVE: 0, SUSPECT: 1, DOWN: 2}


class _HostHealth:
    """Mutable per-host evidence + classification."""

    __slots__ = ("loid", "host", "credential", "state", "since",
                 "last_seen", "consecutive_failures")

    def __init__(self, loid: Any, host: Any, credential: Any, now: float):
        #: the member's actual LOID object (Collection records key on it)
        self.loid = loid
        self.host = host
        self.credential = credential
        self.state = LIVE
        self.since = now
        self.last_seen = now
        self.consecutive_failures = 0


class HealthMonitor:
    """Classify watched hosts LIVE/SUSPECT/DOWN and publish quarantine."""

    def __init__(self, sim: Any, collection: Any, *,
                 interval: float = 15.0, suspect_after: float = 75.0,
                 down_after: float = 150.0, fail_suspect: int = 2,
                 fail_down: int = 5, metrics: Any = None, spans: Any = None):
        self.sim = sim
        self.collection = collection
        self.interval = float(interval)
        self.suspect_after = float(suspect_after)
        self.down_after = float(down_after)
        self.fail_suspect = int(fail_suspect)
        self.fail_down = int(fail_down)
        self.metrics = metrics
        self.spans = spans
        self._hosts: Dict[str, _HostHealth] = {}
        self._by_location: Dict[str, str] = {}
        self.transitions = 0
        self.publish_failures = 0
        self._started = False

    # -- registration ------------------------------------------------------
    def watch(self, host: Any, credential: Any = None) -> None:
        """Track a Host Object's health, using ``credential`` to publish."""
        key = str(host.loid)
        if key in self._hosts:
            return
        self._hosts[key] = _HostHealth(host.loid, host, credential,
                                       self.sim.now)
        self._by_location[str(host.location)] = key
        host.add_push_target(self._heartbeat)

    def _heartbeat(self, host: Any, now: float) -> None:
        record = self._hosts.get(str(host.loid))
        if record is None:
            return
        record.last_seen = now
        record.consecutive_failures = 0

    # -- invoke evidence (BreakerBoard listener) ---------------------------
    def note_outcome(self, dst_key: str, ok: bool) -> None:
        loid = self._by_location.get(dst_key)
        if loid is None:
            return
        record = self._hosts[loid]
        if ok:
            record.last_seen = self.sim.now
            record.consecutive_failures = 0
        else:
            record.consecutive_failures += 1

    # -- classification ----------------------------------------------------
    def _classify(self, record: _HostHealth, now: float) -> str:
        stale = now - record.last_seen
        if stale > self.down_after or record.consecutive_failures >= self.fail_down:
            return DOWN
        if stale > self.suspect_after or record.consecutive_failures >= self.fail_suspect:
            return SUSPECT
        return LIVE

    def tick(self) -> None:
        now = self.sim.now
        for loid in sorted(self._hosts):
            record = self._hosts[loid]
            state = self._classify(record, now)
            if state != record.state:
                self._transition(record, state, now)
        if self.metrics is not None:
            counts = self.counts()
            self.metrics.set_gauge("guardrail_hosts_suspect",
                                   counts[SUSPECT])
            self.metrics.set_gauge("guardrail_hosts_down", counts[DOWN])

    def _transition(self, record: _HostHealth, to: str, now: float) -> None:
        frm, record.state = record.state, to
        prev_since, record.since = record.since, now
        self.transitions += 1
        if self.metrics is not None:
            self.metrics.count("guardrail_health_transitions_total",
                               from_state=frm, to_state=to)
        if self.spans is not None:
            self.spans.record_span("guardrail:health", start=now, end=now,
                                   host=str(record.loid), from_state=frm,
                                   to_state=to)
            if frm != LIVE and to == LIVE:
                # one span per completed quarantine window
                self.spans.record_span("guardrail:quarantine",
                                       start=prev_since, end=now,
                                       host=str(record.loid), worst=frm)
        self._publish(record, now)

    def _publish(self, record: _HostHealth, now: float) -> None:
        """Write host_health into the host's Collection record.

        Health rides the Collection record directly (not the host's
        attribute snapshot), so ordinary reassessment pushes never
        clobber it and an evicted-then-rejoined record simply lacks the
        key (treated as live).
        """
        if record.credential is None:
            return
        update = {"host_health": record.state, "host_health_since": now}
        try:
            self.collection.update_entry(record.loid, update,
                                         record.credential)
        except (NotAMemberError, NetworkError, HostUnreachableError):
            # record was evicted, or the Collection is unreachable this
            # instant; the next transition (or re-join) republishes
            self.publish_failures += 1

    # -- queries -----------------------------------------------------------
    def state_of(self, loid: Any) -> str:
        record = self._hosts.get(str(loid))
        return record.state if record is not None else LIVE

    def state_of_location(self, location: Any) -> str:
        loid = self._by_location.get(str(location))
        return self._hosts[loid].state if loid is not None else LIVE

    def down_since(self, loid: Any) -> Optional[float]:
        record = self._hosts.get(str(loid))
        if record is not None and record.state == DOWN:
            return record.since
        return None

    def counts(self) -> Dict[str, int]:
        out = {LIVE: 0, SUSPECT: 0, DOWN: 0}
        for record in self._hosts.values():
            out[record.state] += 1
        return out

    def watched(self) -> int:
        return len(self._hosts)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic per-host evidence for checkpoint audits."""
        return {loid: {"state": record.state,
                       "since": record.since,
                       "last_seen": record.last_seen,
                       "consecutive_failures": record.consecutive_failures}
                for loid, record in sorted(self._hosts.items())}

    # -- daemon ------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.schedule(self.interval, self._tick_event)

    def _tick_event(self) -> None:
        self.tick()
        self.sim.schedule(self.interval, self._tick_event)

    def __repr__(self) -> str:  # pragma: no cover
        counts = self.counts()
        return (f"<HealthMonitor watched={len(self._hosts)} "
                f"suspect={counts[SUSPECT]} down={counts[DOWN]}>")
