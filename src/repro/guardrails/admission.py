"""Admission control for Host Objects: load-aware site autonomy.

Legion's Table 1 gives a Host Object the right to accept or reject any
request; the :class:`AdmissionController` makes that decision load-aware.
Before a reservation request reaches the ledger, the controller checks

* the **pending-reservation queue** — granted-but-unredeemed tokens are
  promises of future capacity; past ``max_pending`` the host refuses to
  over-promise, and
* the **machine load** — past ``load_limit`` the host sheds new work
  rather than degrade everything already placed on it.

Violations raise :class:`~repro.errors.AdmissionRejected` (non-retryable:
an immediate retry hits the same overloaded host — the Enactor should
fall back to a variant schedule instead).
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import AdmissionRejected

__all__ = ["AdmissionController"]


class AdmissionController:
    """Shared, stateless admission policy consulted by each Host Object."""

    def __init__(self, max_pending: Optional[int] = 16,
                 load_limit: Optional[float] = 16.0, metrics: Any = None):
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if load_limit is not None and load_limit <= 0:
            raise ValueError("load_limit must be positive")
        self.max_pending = max_pending
        self.load_limit = load_limit
        self.metrics = metrics
        self.rejections = 0

    def check(self, host: Any, now: float) -> None:
        """Raise :class:`AdmissionRejected` if ``host`` should refuse."""
        if self.max_pending is not None:
            pending = host.reservations.pending_count(now)
            if pending >= self.max_pending:
                self._reject("pending")
                raise AdmissionRejected(
                    f"{host.loid}: {pending} pending reservations "
                    f"(limit {self.max_pending})")
        if self.load_limit is not None:
            load = host.machine.load_average
            if load > self.load_limit:
                self._reject("load")
                raise AdmissionRejected(
                    f"{host.loid}: load {load:.2f} exceeds limit "
                    f"{self.load_limit:.2f}")

    def _reject(self, reason: str) -> None:
        self.rejections += 1
        if self.metrics is not None:
            self.metrics.count("guardrail_admission_rejected_total",
                               reason=reason)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<AdmissionController max_pending={self.max_pending} "
                f"load_limit={self.load_limit} "
                f"rejections={self.rejections}>")
