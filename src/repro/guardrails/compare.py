"""Three-way guardrails benchmark: off vs. retries-only vs. guardrails+retries.

Runs the *same* seeded chaos campaign three times — identical testbed
seed, identical fault timeline — flipping only the resilience layer:

* ``off``        — no retries, no guardrails (the PR 3 baseline)
* ``retries``    — RetryPolicy only (the PR 4 resilience layer)
* ``guardrails`` — guardrails + retries (this subsystem)

and reports survival alongside **wasted reservation attempts**
(reservations issued to hosts that were DOWN at issue time).  Retries
buy survival by paying extra rounds against dead hosts; guardrails keep
the survival while routing those rounds to live ones.  The JSON export
is the ``BENCH_guardrails.json`` resilience-trajectory datapoint and is
byte-stable for fixed seeds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict

from ..chaos.report import ResilienceReport

__all__ = ["MODES", "GuardrailsComparison", "run_comparison"]

#: benchmark modes in escalation order
MODES = ("off", "retries", "guardrails")


@dataclass
class GuardrailsComparison:
    """Reports for all three modes plus the derived benefit deltas."""

    profile: str = ""
    chaos_seed: int = 0
    testbed_seed: int = 0
    reports: Dict[str, ResilienceReport] = field(default_factory=dict)

    # -- derived -----------------------------------------------------------
    def survival(self, mode: str) -> float:
        return self.reports[mode].placement_success_rate

    def wasted(self, mode: str) -> int:
        return self.reports[mode].wasted_reservation_attempts

    @property
    def survival_delta(self) -> float:
        """guardrails+retries survival minus retries-only survival."""
        return self.survival("guardrails") - self.survival("retries")

    @property
    def wasted_delta(self) -> int:
        """wasted attempts saved by guardrails vs. retries-only."""
        return self.wasted("retries") - self.wasted("guardrails")

    @property
    def guardrails_improve(self) -> bool:
        """The acceptance-criterion predicate: survival no worse AND
        strictly fewer wasted reservation attempts."""
        return self.survival_delta >= 0 and self.wasted_delta > 0

    def slo_minutes(self, mode: str) -> float:
        """SLO minutes lost in ``mode`` (0.0 when sampling was off)."""
        return float(self.reports[mode].slo.get("minutes_lost", 0.0))

    @property
    def has_slo(self) -> bool:
        """True when every mode ran with the metrics sampler armed."""
        return all(rep.slo for rep in self.reports.values()) \
            and bool(self.reports)

    def to_dict(self) -> Dict[str, Any]:
        doc = {
            "profile": self.profile,
            "chaos_seed": self.chaos_seed,
            "testbed_seed": self.testbed_seed,
            "modes": {mode: self.reports[mode].to_dict()
                      for mode in MODES if mode in self.reports},
            "benefit": {
                "survival_off": self.survival("off"),
                "survival_retries": self.survival("retries"),
                "survival_guardrails": self.survival("guardrails"),
                "survival_delta": self.survival_delta,
                "wasted_off": self.wasted("off"),
                "wasted_retries": self.wasted("retries"),
                "wasted_guardrails": self.wasted("guardrails"),
                "wasted_delta": self.wasted_delta,
                "guardrails_improve": self.guardrails_improve,
            },
        }
        # only present under sampling, so the committed pre-sampler
        # BENCH_guardrails.json ledger stays byte-identical
        if self.has_slo:
            doc["benefit"]["slo_minutes_off"] = self.slo_minutes("off")
            doc["benefit"]["slo_minutes_retries"] = \
                self.slo_minutes("retries")
            doc["benefit"]["slo_minutes_guardrails"] = \
                self.slo_minutes("guardrails")
            doc["benefit"]["slo_minutes_saved"] = round(
                self.slo_minutes("off") - self.slo_minutes("guardrails"), 6)
        return doc

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        lines = [
            f"guardrails benchmark {self.profile!r} "
            f"(chaos-seed {self.chaos_seed}, testbed-seed "
            f"{self.testbed_seed})",
            f"  {'mode':<12} {'survival':>9} {'wasted':>7} "
            f"{'shed':>5} {'opens':>6} {'retries':>8} {'completed':>10}",
        ]
        for mode in MODES:
            if mode not in self.reports:
                continue
            rep = self.reports[mode]
            lines.append(
                f"  {mode:<12} {100.0 * rep.placement_success_rate:>8.1f}% "
                f"{rep.wasted_reservation_attempts:>7} "
                f"{rep.load_shed:>5} "
                f"{rep.breaker_opens:>6} "
                f"{rep.transport_retries + rep.reservation_retries:>8} "
                f"{rep.instances_completed:>10}")
        lines.append(
            f"  benefit: survival {self.survival_delta:+.3f} vs retries, "
            f"wasted attempts {-self.wasted_delta:+d} "
            f"({'improves' if self.guardrails_improve else 'NO IMPROVEMENT'})")
        if self.has_slo:
            lines.append(
                f"  slo minutes lost: off {self.slo_minutes('off'):g}, "
                f"retries {self.slo_minutes('retries'):g}, "
                f"guardrails {self.slo_minutes('guardrails'):g}")
        return "\n".join(lines)


def run_comparison(profile: str = "hosts",
                   chaos_seed: int = 0,
                   seed: int = 0,
                   include_events: bool = False,
                   **campaign_kwargs: Any) -> GuardrailsComparison:
    """Run the off / retries-only / guardrails+retries triple.

    All three campaigns share every seed, so the fault timelines are
    identical and the comparison measures the policy, not the luck.
    Extra keyword arguments flow through to
    :func:`~repro.chaos.campaign.run_campaign`.
    """
    from ..chaos.campaign import run_campaign

    flags = {"off": (False, False),
             "retries": (True, False),
             "guardrails": (True, True)}
    comparison = GuardrailsComparison(
        profile=profile, chaos_seed=chaos_seed, testbed_seed=seed)
    for mode in MODES:
        retry, guardrails = flags[mode]
        comparison.reports[mode] = run_campaign(
            profile=profile, chaos_seed=chaos_seed, seed=seed,
            retry=retry, guardrails=guardrails,
            include_events=include_events, **campaign_kwargs)
    return comparison
