"""Per-destination circuit breakers for :class:`~repro.net.transport.Transport`.

The classic three-state machine, driven entirely by the virtual clock::

            failure x threshold                cooldown elapsed
   CLOSED ----------------------->  OPEN  ------------------------> HALF_OPEN
     ^                               ^                                 |
     |        probe succeeds         |        probe fails              |
     +-------------------------------+---------------------------------+

* **CLOSED** — calls flow; consecutive transport failures are counted
  (any success resets the count).
* **OPEN** — calls are refused immediately with
  :class:`~repro.errors.CircuitOpenError` (non-retryable, so a
  RetryPolicy fails fast instead of burning its attempt budget).
* **HALF_OPEN** — after ``cooldown``, exactly one probe call is let
  through; success re-closes the breaker, failure re-opens it for
  another cooldown.

The :class:`BreakerBoard` keys breakers by destination
:class:`~repro.net.topology.NetLocation` string, emits ``guardrail_*``
metrics and breaker-state-transition spans, and forwards per-destination
success/failure evidence to an optional listener (the
:class:`~repro.guardrails.health.HealthMonitor`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..errors import CircuitOpenError

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitBreaker", "BreakerBoard"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """One destination's breaker state machine."""

    __slots__ = ("dst", "failure_threshold", "cooldown", "state",
                 "consecutive_failures", "opened_at", "probe_in_flight",
                 "opens", "fast_fails", "_on_transition")

    def __init__(self, dst: str, failure_threshold: int = 3,
                 cooldown: float = 45.0,
                 on_transition: Optional[Callable[["CircuitBreaker", str,
                                                   str, float], None]] = None):
        self.dst = dst
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float = 0.0
        self.probe_in_flight = False
        self.opens = 0
        self.fast_fails = 0
        self._on_transition = on_transition

    def _transition(self, to: str, now: float) -> None:
        frm, self.state = self.state, to
        if to == OPEN:
            self.opens += 1
            self.opened_at = now
            self.probe_in_flight = False
        elif to == CLOSED:
            self.consecutive_failures = 0
            self.probe_in_flight = False
        if self._on_transition is not None:
            self._on_transition(self, frm, to, now)

    # -- admission ---------------------------------------------------------
    def allow(self, now: float) -> bool:
        """May a call to this destination be issued right now?

        In OPEN state, an elapsed cooldown flips to HALF_OPEN and admits
        the caller as the single probe; in HALF_OPEN only one probe may
        be in flight at a time (a parallel batch's remaining calls are
        refused).
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at >= self.cooldown:
                self._transition(HALF_OPEN, now)
                self.probe_in_flight = True
                return True
            self.fast_fails += 1
            return False
        # HALF_OPEN
        if self.probe_in_flight:
            self.fast_fails += 1
            return False
        self.probe_in_flight = True
        return True

    # -- evidence ----------------------------------------------------------
    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self._transition(CLOSED, now)

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._transition(OPEN, now)
            return
        if self.state == CLOSED:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.failure_threshold:
                self._transition(OPEN, now)
        # failures reported while OPEN (calls admitted before the trip)
        # neither extend the cooldown nor re-count

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<CircuitBreaker {self.dst} {self.state} "
                f"failures={self.consecutive_failures}>")


class BreakerBoard:
    """All destinations' breakers, shared metrics, and the listener hook."""

    def __init__(self, clock: Callable[[], float],
                 failure_threshold: int = 3, cooldown: float = 45.0,
                 metrics: Any = None, spans: Any = None,
                 listener: Optional[Callable[[str, bool], None]] = None):
        self._clock = clock
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self.metrics = metrics
        self.spans = spans
        #: called with (dst, ok) on every recorded outcome — the
        #: HealthMonitor consumes this as per-host invoke evidence
        self.listener = listener
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker_for(self, dst: Any) -> CircuitBreaker:
        key = str(dst)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(key, self.failure_threshold,
                                     self.cooldown,
                                     on_transition=self._note_transition)
            self._breakers[key] = breaker
        return breaker

    def _note_transition(self, breaker: CircuitBreaker, frm: str, to: str,
                         now: float) -> None:
        if self.metrics is not None:
            self.metrics.count("guardrail_breaker_transitions_total",
                               from_state=frm, to_state=to)
            self.metrics.set_gauge("guardrail_breakers_open",
                                   self.open_count())
        if self.spans is not None:
            self.spans.record_span("guardrail:breaker", start=now, end=now,
                                   dst=breaker.dst, from_state=frm,
                                   to_state=to)
            if frm != CLOSED and to == CLOSED:
                # one span per completed quarantine window
                self.spans.record_span("guardrail:breaker_open",
                                       start=breaker.opened_at, end=now,
                                       dst=breaker.dst)

    # -- transport-facing API ----------------------------------------------
    def check(self, dst: Any) -> None:
        """Raise :class:`CircuitOpenError` when the destination is refused."""
        if not self.allow(dst):
            raise CircuitOpenError(f"circuit open for {dst}")

    def allow(self, dst: Any) -> bool:
        allowed = self.breaker_for(dst).allow(self._clock())
        if not allowed and self.metrics is not None:
            self.metrics.count("guardrail_breaker_fast_fails_total")
        return allowed

    def record_success(self, dst: Any) -> None:
        self.breaker_for(dst).record_success(self._clock())
        if self.listener is not None:
            self.listener(str(dst), True)

    def record_failure(self, dst: Any) -> None:
        self.breaker_for(dst).record_failure(self._clock())
        if self.listener is not None:
            self.listener(str(dst), False)

    # -- introspection -----------------------------------------------------
    def open_count(self) -> int:
        return sum(1 for b in self._breakers.values() if b.state == OPEN)

    def states(self) -> Dict[str, str]:
        return {dst: b.state for dst, b in sorted(self._breakers.items())}

    def total_opens(self) -> int:
        return sum(b.opens for b in self._breakers.values())

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic per-destination state for checkpoint audits."""
        return {dst: {"state": b.state,
                      "consecutive_failures": b.consecutive_failures,
                      "opened_at": b.opened_at,
                      "opens": b.opens,
                      "fast_fails": b.fast_fails}
                for dst, b in sorted(self._breakers.items())}

    def total_fast_fails(self) -> int:
        return sum(b.fast_fails for b in self._breakers.values())

    def __len__(self) -> int:
        return len(self._breakers)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<BreakerBoard breakers={len(self._breakers)} "
                f"open={self.open_count()}>")
