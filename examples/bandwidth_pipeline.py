#!/usr/bin/env python
"""Network Objects (paper section 6 future work): a cross-domain pipeline.

A 4-stage processing pipeline streams data between consecutive stages.
Inter-domain links are guarded by Network Objects — the communications
analogue of Host Objects, with capacity admission and unforgeable
bandwidth tokens.  One link is congested; the bandwidth-aware Scheduler
consults the links, routes the pipeline around the congestion, and
co-allocates bandwidth alongside the host reservations.

Run:  python examples/bandwidth_pipeline.py
"""

from repro import ObjectClassRequest
from repro.bench import ExperimentTable
from repro.network_objects import (
    BandwidthAwareScheduler,
    LinkRegistry,
    NetworkObject,
)
from repro.scheduler import LoadAwareScheduler
from repro.workload import implementations_for_all_platforms, multi_domain

STAGES = 4
TRAFFIC = 4.0e4  # bytes/second between consecutive stages


def build():
    meta = multi_domain(n_domains=3, hosts_per_domain=6, seed=404,
                        dynamics=False)
    registry = LinkRegistry()
    domains = [d.name for d in meta.topology.domains()]
    for i, da in enumerate(domains):
        for db in domains[i + 1:]:
            registry.add(NetworkObject(
                meta.minter.mint("svc", f"link-{da}-{db}"), da, db,
                capacity=1.0e5))
    # a big file transfer is hogging the dom0-dom1 link
    registry.between("dom0", "dom1").reserve_bandwidth(
        0.9e5, now=0.0, duration=1e9)
    app = meta.create_class("PipelineStage",
                            implementations_for_all_platforms(),
                            work_units=100.0)
    host_domains = {h.loid: h.domain for h in meta.hosts}
    return meta, registry, app, host_domains


def main() -> None:
    table = ExperimentTable(
        f"{STAGES}-stage pipeline, {TRAFFIC:.0f} B/s per edge, "
        f"dom0-dom1 link 90% reserved",
        ["scheduler", "placement (domains)", "comm penalty",
         "bandwidth co-allocated (B/s)"])

    for label, aware in (("bandwidth-blind load-aware", False),
                         ("bandwidth-aware", True)):
        meta, registry, app, host_domains = build()
        evaluator = BandwidthAwareScheduler(
            meta.collection, meta.enactor, meta.transport, links=registry,
            host_domains=host_domains, pair_traffic=TRAFFIC)
        if aware:
            sched = evaluator
        else:
            sched = LoadAwareScheduler(meta.collection, meta.enactor,
                                       meta.transport, n_variants=4)
        outcome = sched.run([ObjectClassRequest(app, STAGES)])
        assert outcome.ok
        entries = outcome.feedback.reserved_entries
        chain = " -> ".join(host_domains[m.host_loid] for m in entries)
        penalty = evaluator.comm_penalty(entries, meta.now)
        reserved = 0.0
        if aware:
            plan = evaluator.allocate_bandwidth(entries, duration=600.0)
            reserved = sum(t.bandwidth for t in plan.tokens)
            print("bandwidth tokens:")
            for tok in plan.tokens:
                print(f"  {tok.link_loid}: {tok.bandwidth:.0f} B/s over "
                      f"[{tok.start:.0f}, {tok.end:.0f})")
        table.add(label, chain, penalty, reserved)

    table.print()
    print("Expected shape: the aware Scheduler avoids the congested link "
          "(lower comm penalty)\nand holds real bandwidth reservations "
          "for the edges it does use.")


if __name__ == "__main__":
    main()
