#!/usr/bin/env python
"""Trigger-driven migration (paper sections 2.1 and 3.5, Fig. 3 steps 12-13).

Long-running objects are placed on a quiet metasystem; then another user's
heavy job lands on one machine (a load spike).  The host's RGE trigger
fires, the Monitor's registered outcall runs, and the victims are migrated
— shutdown, OPR moved, reactivated elsewhere — preserving their progress.

The same scenario is run with the Monitor disabled to show what the
mechanism buys.

Run:  python examples/migration_demo.py
"""

from repro import ObjectClassRequest
from repro.bench import ExperimentTable
from repro.workload import (
    implementations_for_all_platforms,
    multi_domain,
    wait_for_completion,
)

WORK = 3000.0  # ~50 virtual minutes


def run(monitor_enabled: bool):
    meta = multi_domain(n_domains=2, hosts_per_domain=4, seed=303,
                        dynamics=False)
    app = meta.create_class("LongJob",
                            implementations_for_all_platforms(),
                            work_units=WORK)
    scheduler = meta.make_scheduler("load")
    outcome = scheduler.run([ObjectClassRequest(app, count=4)])
    assert outcome.ok

    monitor = meta.make_monitor(min_load_advantage=1.0)
    monitor.enabled = monitor_enabled
    monitor.watch_all(meta.hosts)

    # at t=300 a load spike hits the host running the first object
    victim_host_loid = app.get_instance(outcome.created[0]).host_loid
    victim_host = meta.resolve(victim_host_loid)

    def spike():
        victim_host.machine.set_background_load(25.0)
        victim_host.reassess()
    meta.sim.schedule(300.0, spike)

    start = meta.now
    n, last = wait_for_completion(meta, app, outcome.created, timeout=1e6)
    return {
        "completed": n,
        "makespan": last - start,
        "outcalls": monitor.stats.outcalls_received,
        "migrations": monitor.stats.migrations_succeeded,
    }


def main() -> None:
    table = ExperimentTable(
        "Load spike at t=300s on a host running a long job",
        ["monitor", "completed", "makespan (s)", "outcalls",
         "migrations"])
    for enabled in (False, True):
        r = run(enabled)
        table.add("enabled" if enabled else "disabled", r["completed"],
                  r["makespan"], r["outcalls"], r["migrations"])
    table.print()
    print("Expected shape: with the Monitor enabled, the spiked object is "
          "migrated to a quiet host\nand overall makespan drops sharply.")


if __name__ == "__main__":
    main()
