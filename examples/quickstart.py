#!/usr/bin/env python
"""Quickstart: build a small metasystem, schedule objects, watch them run.

This walks the paper's core loop end to end:

1. bootstrap a metasystem (domains, hosts, vaults — Fig. 1);
2. register an application class with per-platform implementations;
3. compute a placement with the Random Scheduler (Fig. 7);
4. let the Enactor negotiate reservations and instantiate (Fig. 3);
5. advance virtual time until the objects complete;
6. render the run's metrics snapshot (docs/observability.md).

Run:  python examples/quickstart.py
"""

from repro import (
    Implementation,
    MachineSpec,
    Metasystem,
    ObjectClassRequest,
)
from repro.workload import wait_for_completion


def main() -> None:
    # -- 1. the metasystem ---------------------------------------------------
    meta = Metasystem(seed=42)
    meta.add_domain("uva", description="UVa CS department")
    for i in range(6):
        meta.add_unix_host(
            f"uva-ws{i}", "uva",
            MachineSpec(arch="sparc", os_name="SunOS", os_version="5.7",
                        speed=1.0 + 0.1 * i, memory_mb=128.0))
    meta.add_vault("uva", name="uva-vault")
    print(f"bootstrapped: {meta!r}")
    print("context space:")
    for path, loid in meta.context.walk():
        print(f"  {path:28s} -> {loid}")

    # -- 2. an application class ------------------------------------------------
    app = meta.create_class(
        "RayTracer",
        [Implementation("sparc", "SunOS", memory_mb=32.0)],
        work_units=600.0)   # ~10 virtual minutes on a baseline CPU

    # -- 3+4. schedule and enact ---------------------------------------------------
    scheduler = meta.make_scheduler("random")
    outcome = scheduler.run([ObjectClassRequest(app, count=4)])
    print(f"\nscheduled 4 instances: ok={outcome.ok} "
          f"(latency {outcome.elapsed * 1000:.1f} virtual ms, "
          f"{outcome.collection_queries} Collection queries)")
    for mapping in outcome.feedback.reserved_entries:
        print(f"  {mapping}")

    # -- 5. run the world forward --------------------------------------------------
    n, last = wait_for_completion(meta, app, outcome.created)
    print(f"\n{n}/4 objects completed by t={last:.1f}s of virtual time")
    print("final host loads:", {k: round(v, 2)
                                for k, v in meta.snapshot_loads().items()})
    print("enactor stats:", meta.enactor.stats)

    # -- 6. observability ----------------------------------------------------------
    from repro.obs import build_snapshot, render_report
    print()
    print(render_report(build_snapshot(meta.metrics),
                        title="quickstart metrics"))


if __name__ == "__main__":
    main()
