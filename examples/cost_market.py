#!/usr/bin/env python
"""Cost-aware scheduling on a priced resource market (paper §1, §3.1).

Hosts advertise "the amount charged per CPU cycle consumed"; users
optimize "throughput, turnaround time, or cost".  A market of cheap-slow
and expensive-fast machines runs the same batch under three deadlines;
the accounting Ledger audits what each choice actually cost.

Run:  python examples/cost_market.py
"""

from repro import (
    Implementation,
    MachineSpec,
    Metasystem,
    ObjectClassRequest,
)
from repro.accounting import CostAwareScheduler, Ledger
from repro.bench import ExperimentTable
from repro.workload import wait_for_completion

N_TASKS = 6
WORK = 300.0


def build():
    meta = Metasystem(seed=505)
    meta.add_domain("market")
    for i in range(3):
        meta.add_unix_host(f"budget{i}", "market",
                           MachineSpec(arch="x86", os_name="Linux",
                                       speed=1.0),
                           slots=4, price=0.02)
    for i in range(3):
        meta.add_unix_host(f"premium{i}", "market",
                           MachineSpec(arch="x86", os_name="Linux",
                                       speed=5.0),
                           slots=4, price=0.25)
    meta.add_vault("market")
    app = meta.create_class("Render", [Implementation("x86", "Linux")],
                            work_units=WORK)
    ledger = Ledger(clock=lambda: meta.now)
    ledger.attach_all(meta.hosts)
    return meta, app, ledger


def main() -> None:
    table = ExperimentTable(
        f"{N_TASKS} x {WORK:.0f}-unit renders: budget 0.02/cycle @1x, "
        f"premium 0.25/cycle @5x",
        ["deadline (s)", "makespan (s)", "cost", "hosts used"])
    for deadline in (1e9, 450.0, 100.0):
        meta, app, ledger = build()
        sched = CostAwareScheduler(meta.collection, meta.enactor,
                                   meta.transport, deadline=deadline)
        outcome = sched.run([ObjectClassRequest(app, N_TASKS)])
        assert outcome.ok, outcome.detail
        n, last = wait_for_completion(meta, app, outcome.created)
        used = sorted({meta.resolve(m.host_loid).machine.name[:-1]
                       for m in outcome.feedback.reserved_entries})
        table.add("unbounded" if deadline >= 1e9 else deadline,
                  last, ledger.total, "+".join(used))
    table.print()
    print("Expected shape: loosening the deadline moves work from premium "
          "to budget machines,\ncutting audited cost at the price of "
          "makespan — the §1 trade-off, metered.")


if __name__ == "__main__":
    main()
