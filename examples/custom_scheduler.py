#!/usr/bin/env python
"""Writing a drop-in Scheduler — the paper's extensibility claim in action.

"This modularity encourages others to write drop-in modules ... the effort
required to implement a simple policy is low, and rises slowly, scaling
commensurately with the complexity of the policy being implemented."

Below, a complete *price-aware* Scheduler in ~30 lines of policy code: it
reads the hosts' advertised ``host_price`` attribute (the paper's example of
rich Collection information: "the amount charged per CPU cycle consumed")
and maps instances to the cheapest viable hosts, with next-cheapest
variants.  Everything else — Collection queries, reservation negotiation,
variant fallback, enactment — comes from the substrate.

Run:  python examples/custom_scheduler.py
"""

from repro import (
    Implementation,
    MachineSpec,
    MasterSchedule,
    Metasystem,
    ObjectClassRequest,
    ScheduleMapping,
    ScheduleRequestList,
    Scheduler,
    VariantSchedule,
)
from repro.errors import SchedulingError


class CheapestFirstScheduler(Scheduler):
    """Map instances to the lowest-price viable hosts."""

    def compute_schedule(self, requests):
        entries, alternates = [], []
        for request in requests:
            records = self.viable_hosts(request.class_obj)
            if not records:
                raise SchedulingError("no viable hosts")
            by_price = sorted(records,
                              key=lambda r: (float(r.get("host_price", 0)),
                                             r.member))
            for i in range(request.count):
                best = by_price[i % len(by_price)]
                nxt = by_price[(i + 1) % len(by_price)]
                entries.append(ScheduleMapping(
                    request.class_obj.loid, best.member,
                    self.compatible_vaults_of(best)[0]))
                alternates.append(ScheduleMapping(
                    request.class_obj.loid, nxt.member,
                    self.compatible_vaults_of(nxt)[0]))
        master = MasterSchedule(entries, label="cheapest")
        replacements = {i: alt for i, alt in enumerate(alternates)
                        if not alt.same_target(entries[i])}
        if replacements:
            master.add_variant(VariantSchedule(replacements,
                                               label="next-cheapest"))
        return ScheduleRequestList([master], label="cheapest-first")


def main() -> None:
    meta = Metasystem(seed=7)
    meta.add_domain("market")
    prices = [0.10, 0.02, 0.45, 0.07, 0.30]
    for i, price in enumerate(prices):
        meta.add_unix_host(f"node{i}", "market",
                           MachineSpec(arch="x86", os_name="Linux"),
                           price=price)
    meta.add_vault("market")
    app = meta.create_class("Batch", [Implementation("x86", "Linux")],
                            work_units=100.0)

    scheduler = CheapestFirstScheduler(meta.collection, meta.enactor,
                                       meta.transport)
    outcome = scheduler.run([ObjectClassRequest(app, count=3)])
    print(f"placed: {outcome.ok}")
    total = 0.0
    for mapping in outcome.feedback.reserved_entries:
        host = meta.resolve(mapping.host_loid)
        print(f"  {host.machine.name}  price={host.price:.2f}")
        total += host.price
    print(f"mean price paid: {total / 3:.3f} "
          f"(market mean {sum(prices) / len(prices):.3f})")
    assert total / 3 < sum(prices) / len(prices)


if __name__ == "__main__":
    main()
