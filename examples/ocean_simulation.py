#!/usr/bin/env python
"""The section-4.3 workload: an MPI-style ocean simulation on a 2-D grid.

"We are working with the DoD MSRC in Stennis, Mississippi to develop a
Scheduler for an MPI-based ocean simulation which uses nearest-neighbor
communication within a 2-D grid."

A 4x6 grid of communicating subtasks is placed three ways — Random (Fig. 7),
IRS (Figs. 8-9), and the stencil-aware Scheduler — on a three-domain
metasystem.  The stencil Scheduler clusters neighbouring grid cells into the
same administrative domain, cutting per-iteration communication cost and
therefore makespan.

Run:  python examples/ocean_simulation.py
"""

from repro.bench import ExperimentTable
from repro.scheduler import StencilScheduler
from repro.workload import StencilApplication, multi_domain

ROWS, COLS = 4, 6
ITERATIONS = 50


def run_one(label: str, seed: int, make_sched):
    meta = multi_domain(n_domains=3, hosts_per_domain=10, seed=seed,
                        dynamics=False)
    app = StencilApplication(meta, f"ocean-{label}", rows=ROWS, cols=COLS,
                             iterations=ITERATIONS, work_per_iter=2.0,
                             comm_penalty_per_unit=0.05)
    report = app.run(make_sched(meta))
    return report


def main() -> None:
    table = ExperimentTable(
        f"Ocean simulation, {ROWS}x{COLS} grid, {ITERATIONS} iterations",
        ["scheduler", "placed", "comm cost/iter", "makespan (s)",
         "sched latency (s)"])

    def random_sched(meta):
        return meta.make_scheduler("random")

    def irs_sched(meta):
        return meta.make_scheduler("irs", n_schedules=4)

    def stencil_sched(meta):
        return StencilScheduler(meta.collection, meta.enactor,
                                meta.transport, rows=ROWS, cols=COLS,
                                instances_per_host=1)

    for label, factory in [("random", random_sched), ("irs", irs_sched),
                           ("stencil-aware", stencil_sched)]:
        report = run_one(label, seed=101, make_sched=factory)
        table.add(label,
                  report.scheduled,
                  report.metrics.get("comm_cost_per_iter", float("nan")),
                  report.makespan,
                  report.scheduling_time)

    table.print()
    print("Expected shape: the stencil-aware Scheduler has the lowest "
          "communication cost per iteration,\nand (because neighbours "
          "exchange data synchronously) the lowest makespan.")


if __name__ == "__main__":
    main()
