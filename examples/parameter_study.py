#!/usr/bin/env python
"""A cross-domain parameter-space study (paper section 4.3).

Sixty sweep points with heavy-tailed cost are scheduled across a
metasystem of three domains — workstations plus an FCFS cluster and a
Maui-style backfill cluster — and compared against the section-5
"single local queue" way of life (everything submitted to one cluster).

Run:  python examples/parameter_study.py
"""

from repro import ObjectClassRequest
from repro.baselines import CentralQueueBaseline
from repro.bench import ExperimentTable
from repro.hosts import BatchQueueHost
from repro.workload import (
    ParameterStudy,
    TestbedSpec,
    build_testbed,
    wait_for_completion,
)

N_POINTS = 60


def build():
    return build_testbed(TestbedSpec(
        n_domains=3, hosts_per_domain=8, platform_mix=3,
        background_load_mean=0.4, seed=202,
        batch_clusters={0: "fcfs", 1: "backfill"}, batch_nodes=8,
        host_slots=3))


def run_metasystem_wide(kind: str):
    meta = build()
    study = ParameterStudy(meta, "sweep", n_points=N_POINTS,
                           base_work=60.0, tail_alpha=1.7)
    sched = meta.make_scheduler(kind)
    # schedule in waves of 10 (reservation contention is realistic);
    # short-lived reservations cover only the submission window
    created = []
    waves = 0
    for _ in range(40):
        remaining = N_POINTS - len(created)
        outcome = sched.run(
            [ObjectClassRequest(study.class_obj, min(10, remaining))],
            reservation_duration=300.0)
        waves += 1
        if outcome.ok:
            created.extend(outcome.created)
            if len(created) >= N_POINTS:
                break
        else:
            meta.advance(120.0)  # let running points drain, then retry
    start = 0.0
    n, last = wait_for_completion(meta, study.class_obj, created,
                                  timeout=1e6)
    return len(created), n, last - start, waves


def run_central_queue():
    meta = build()
    study = ParameterStudy(meta, "sweep", n_points=N_POINTS,
                           base_work=60.0, tail_alpha=1.7)
    cluster = next(h for h in meta.hosts if isinstance(h, BatchQueueHost))
    baseline = CentralQueueBaseline(cluster, meta.transport)
    outcome = baseline.run([ObjectClassRequest(study.class_obj, N_POINTS)])
    created = outcome.created
    n, last = wait_for_completion(meta, study.class_obj, created,
                                  timeout=1e6)
    return len(created), n, last, 1


def main() -> None:
    table = ExperimentTable(
        f"Parameter study: {N_POINTS} heavy-tailed points",
        ["strategy", "placed", "completed", "makespan (s)", "waves"])
    for label, runner in [
        ("legion random", lambda: run_metasystem_wide("random")),
        ("legion load-aware", lambda: run_metasystem_wide("load")),
        ("central queue only", run_central_queue),
    ]:
        placed, completed, makespan, waves = runner()
        table.add(label, placed, completed, makespan, waves)
    table.print()
    print("Expected shape: load-aware metasystem-wide scheduling beats "
          "funnelling every point into one\nsite's queue.  Load-blind "
          "random placement can even lose to the single queue — exactly "
          "the\npaper's motivation for building infrastructure that lets "
          "smarter Schedulers drop in.")


if __name__ == "__main__":
    main()
